"""Figure 2 — the hierarchical multi-modal pre-training framework.

A structural self-check of the architecture diagram: data flows through
the sentence-level encoder (text + layout), the modality fusion, and the
document-level encoder (adding visual + sentence layout + positions),
ending in the three pre-training objectives.  The bench prints the
architecture summary and verifies every arrow of the figure with shapes.
"""

import numpy as np

from repro.core import (
    Featurizer,
    HierarchicalEncoder,
    Pretrainer,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator
from repro.text import WordPieceTokenizer

from .harness import report


def build():
    documents = ResumeGenerator(
        seed=5, content_config=ContentConfig.tiny()
    ).batch(2)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=600, min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab), dropout=0.0)
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(0))
    return documents, featurizer, encoder, config


def test_fig2_architecture(benchmark):
    documents, featurizer, encoder, config = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    features = featurizer.featurize(documents[0])
    encoded = encoder(features)
    m, t = features.token_ids.shape

    lines = [
        "Figure 2 — hierarchical multi-modal pre-training framework",
        "",
        encoder.summary(),
        "",
        "data flow (one document):",
        f"  tokens (m={m}, t={t})"
        f" --[text emb (Eq.1) + 2D layout emb (Eq.2)]--> ({m}, {t}, {config.hidden_dim})",
        f"  --[sentence Transformer x{config.sentence_layers}]--> token states "
        f"{tuple(encoded.token_states.shape)}",
        f"  --[CLS + dense + L2 norm]--> sentence vectors "
        f"{tuple(encoded.sentence_vectors.shape)}",
        f"  --[⊕ visual ({config.visual_dim}->{config.visual_proj_dim})]--> fused h* "
        f"{tuple(encoded.fused.shape)}",
        f"  --[+ sentence layout + 1D pos + segment; document Transformer "
        f"x{config.document_layers}]--> contextual h' {tuple(encoded.contextual.shape)}",
        "",
        "pre-training objectives wired on top:",
        "  #1 MLLM  : token states -> vocab logits (masked positions)",
        "  #2 SCL   : masked slots h' vs targets h*, InfoNCE (Eq. 3-4)",
        "  #3 DNSP  : bilinear W_d adjacency over sampled pairs (Eq. 5-6)",
        f"  combined : {config.lambda_wp}*L_wp + {config.lambda_cl}*L_cl "
        f"+ {config.lambda_ns}*L_ns (Eq. 7)",
    ]
    report("fig2_architecture", "\n".join(lines))

    # Verify the figure's arrows by shape.
    assert encoded.token_states.shape == (m, t, config.hidden_dim)
    assert encoded.sentence_vectors.shape == (m, config.hidden_dim)
    assert encoded.fused.shape == (m, config.document_dim)
    assert encoded.contextual.shape == (m, config.document_dim)

    # All three objectives produce finite losses on this document.
    pretrainer = Pretrainer(encoder, featurizer, seed=0)
    losses = pretrainer.pretrain_step([features])
    assert {"wp", "cl", "ns", "total"} <= set(losses)
    assert all(np.isfinite(v) for v in losses.values())
