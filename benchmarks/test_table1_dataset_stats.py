"""Table I — resume document dataset statistics.

Paper (per split): 80,000 / 1,100 / 500 / 500 documents; avg tokens
~1,704 / 1,722 / 1,704 / 1,685; avg sentences ~90; avg pages ~2.1.

We regenerate the statistics at 1:70 scale with the *paper* content profile
(the corpus generator is calibrated so sentence and page counts land on the
paper's shape; token counts are lower because the synthetic corpus is
English words, not Chinese WordPiece — see EXPERIMENTS.md).
"""

from repro.corpus import ContentConfig, build_block_corpus, corpus_stats
from repro.eval import format_stats_table

from .harness import report

#: Paper split sizes ÷ 70 (ratios preserved).
SPLIT_SIZES = {"pretrain": 48, "train": 16, "validation": 7, "test": 7}

PAPER_ROWS = {
    "pretrain": {"# of samples": 80000, "avg # of tokens": 1704.20,
                 "avg # of sentences": 90.28, "avg # of pages": 2.1},
    "train": {"# of samples": 1100, "avg # of tokens": 1721.98,
              "avg # of sentences": 90.71, "avg # of pages": 2.02},
    "validation": {"# of samples": 500, "avg # of tokens": 1704.37,
                   "avg # of sentences": 89.57, "avg # of pages": 2.04},
    "test": {"# of samples": 500, "avg # of tokens": 1685.43,
             "avg # of sentences": 91.26, "avg # of pages": 2.23},
}


def build_corpus():
    return build_block_corpus(
        num_pretrain=SPLIT_SIZES["pretrain"],
        num_train=SPLIT_SIZES["train"],
        num_validation=SPLIT_SIZES["validation"],
        num_test=SPLIT_SIZES["test"],
        seed=1,
        content_config=ContentConfig.paper(),
    )


def test_table1_dataset_stats(benchmark):
    corpus = benchmark.pedantic(build_corpus, rounds=1, iterations=1)

    measured = {}
    for name, documents in corpus.splits().items():
        stats = corpus_stats(documents)
        measured[name] = {
            "# of samples": stats.num_documents,
            "avg # of tokens": stats.avg_tokens,
            "avg # of sentences": stats.avg_sentences,
            "avg # of pages": stats.avg_pages,
        }

    text = format_stats_table(
        measured, title="Table I (measured, 1:70 scale, paper content profile)"
    )
    text += "\n\n" + format_stats_table(PAPER_ROWS, title="Table I (paper)")
    report("table1_dataset_stats", text)

    # Shape assertions: sentence/page statistics match the paper's range.
    for name, stats in measured.items():
        assert 60 <= stats["avg # of sentences"] <= 130, name
        assert 1.5 <= stats["avg # of pages"] <= 3.5, name
        assert stats["avg # of tokens"] > 400, name
    # Split ratios preserved (pretrain >> train > val ≈ test).
    assert measured["pretrain"]["# of samples"] == 3 * measured["train"]["# of samples"]
