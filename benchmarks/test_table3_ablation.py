"""Table III — ablation of our block classification model.

Paper: removing any component hurts on every tag; the ordering of damage is
SCL (largest drop) > DNSP > WMP > KD.  We retrain our model with each
component disabled on the shared corpus and verify the full model is never
worse than the ablations (macro-F1) and that disabling the document-level
objectives (SCL/DNSP) hurts.
"""

from repro.core import PretrainObjectives
from repro.docmodel import BLOCK_TAGS
from repro.eval import format_prf_table

from .harness import (
    best_of_seeds,
    block_world,
    evaluate_block_methods,
    our_model,
    report,
    train_our_model,
)

PAPER_MACRO_F1 = {
    "Our Method": 89.63, "w/o KD": 86.77, "w/o WMP": 84.60,
    "w/o SCL": 76.32, "w/o DNSP": 81.01,
}


def build_variants():
    # "Our Method" trains without KD (see harness.train_our_model: at this
    # scale the teacher is weaker than the student); the "w/ KD" row
    # measures Algorithm 1 explicitly so the divergence from the paper's
    # "w/o KD hurts" finding is visible and documented.
    # Every variant gets the same validation-based seed selection as the
    # full model, so ablation deltas are not seed noise.
    return {
        "Our Method": our_model(),
        "w/ KD": best_of_seeds(lambda s: train_our_model(use_kd=True, seed=s)),
        "w/o WMP": best_of_seeds(
            lambda s: train_our_model(objectives=PretrainObjectives(wmp=False), seed=s)
        ),
        "w/o SCL": best_of_seeds(
            lambda s: train_our_model(objectives=PretrainObjectives(scl=False), seed=s)
        ),
        "w/o DNSP": best_of_seeds(
            lambda s: train_our_model(objectives=PretrainObjectives(dnsp=False), seed=s)
        ),
    }


def test_table3_ablation(benchmark):
    variants = benchmark.pedantic(build_variants, rounds=1, iterations=1)
    results = evaluate_block_methods(variants)

    text = format_prf_table(
        results, BLOCK_TAGS,
        title="Table III (measured) — ablation: F1 (R / P), in %",
    )
    text += "\n\nTable III (paper, macro-F1 over tags): " + ", ".join(
        f"{k}={v:.1f}" for k, v in PAPER_MACRO_F1.items()
    )
    report("table3_ablation", text)

    def macro(scores):
        values = [scores[t].f1 for t in BLOCK_TAGS if t in scores]
        return sum(values) / len(values) if values else 0.0

    macros = {name: macro(scores) for name, scores in results.items()}
    report(
        "table3_macro_summary",
        "macro-F1 -> " + ", ".join(f"{k}: {v:.3f}" for k, v in macros.items()),
    )

    # Shape: the full model is at least as good as every pre-training
    # ablation (within small-scale noise), and the document-level
    # objectives matter: the full model beats the weakest of them.
    full = macros["Our Method"]
    for name in ("w/o WMP", "w/o SCL", "w/o DNSP"):
        assert full >= macros[name] - 0.05, (name, macros)
    assert full > min(macros["w/o SCL"], macros["w/o DNSP"]) - 0.02, macros
    # KD with a weaker-than-student teacher must not catastrophically
    # degrade training (the divergence itself is reported, not asserted).
    assert macros["w/ KD"] > 0.5 * full, macros
