"""Extra ablations beyond the paper's tables (DESIGN.md §6).

* **Dynamic vs. static sentence masking** in SCL — the paper argues the
  dynamic strategy "can obtain more diverse masked sentences" (IV-A2); we
  measure both.
* **Visual channel on/off** in the document encoder — quantifies the
  multi-modal contribution directly.
* **Confidence threshold γ sweep** for high-confidence token selection
  (Eq. 11) around the paper's γ = 0.8.
"""

import numpy as np

from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    Pretrainer,
)
from repro.docmodel import BLOCK_TAGS
from repro.eval import format_table

from .harness import best_of_seeds, block_world, our_model, report
from .ner_harness import macro_f1 as ner_macro
from .ner_harness import ner_world, scores_by_block, train_our_ner


def _macro(scores):
    values = [scores[t].f1 for t in BLOCK_TAGS if t in scores]
    return sum(values) / len(values) if values else 0.0


class _ZeroVisualFeaturizer(Featurizer):
    """Featurizer variant that blinds the visual channel."""

    def featurize(self, document):
        features = super().featurize(document)
        features.sentence_visual = np.zeros_like(features.sentence_visual)
        return features


def _train_block_variant(featurizer_cls, dynamic_masking, seed):
    corpus, tokenizer, model_config, _, labeled, validation, _ = block_world()
    featurizer = featurizer_cls(tokenizer, model_config)
    encoder = HierarchicalEncoder(model_config, rng=np.random.default_rng(seed))
    Pretrainer(
        encoder, featurizer, seed=seed,
        dynamic_sentence_masking=dynamic_masking,
    ).fit(corpus.pretrain, epochs=4, batch_size=4)
    classifier = BlockClassifier(
        encoder, featurizer, rng=np.random.default_rng(seed + 1)
    )
    BlockTrainer(classifier, seed=seed).fit(
        labeled, validation=validation, epochs=14, patience=5
    )
    return classifier


def test_extra_block_ablations(benchmark):
    def build():
        return {
            "dynamic masking (ours)": our_model(),
            "static masking": best_of_seeds(
                lambda s: _train_block_variant(Featurizer, False, seed=s)
            ),
            "no visual channel": best_of_seeds(
                lambda s: _train_block_variant(_ZeroVisualFeaturizer, True, seed=s)
            ),
        }

    variants = benchmark.pedantic(build, rounds=1, iterations=1)
    *_, evaluation = block_world()
    macros = {
        name: _macro(evaluation.evaluate(model))
        for name, model in variants.items()
    }
    rows = [[name, f"{value * 100:.2f}"] for name, value in macros.items()]
    report(
        "extra_block_ablations",
        format_table(
            ["Variant", "macro-F1 (%)"], rows,
            title="Extra ablations — SCL masking strategy and visual channel",
        ),
    )
    # Dynamic masking should not lose to static by a wide margin, and the
    # full model should not lose to the visually-blinded one by a wide
    # margin (small-scale noise tolerated).
    full = macros["dynamic masking (ours)"]
    assert full >= macros["static masking"] - 0.06, macros
    assert full >= macros["no visual channel"] - 0.06, macros


def test_extra_classic_embeddings(benchmark):
    """Pre-Transformer lineage: Word2Vec-initialised BiLSTM+CRF vs random.

    The paper's related work credits word2vec initialisation for the
    classic resume extractors (Sheng et al., 2018); this bench reproduces
    that comparison under the same distant supervision as Table IV.
    """
    import numpy as np

    from repro.baselines import Word2VecBiLstmCrf
    from repro.eval import entity_prf
    from repro.text import Vocab, Word2VecConfig, train_word2vec

    def build():
        corpus, annotator, train, *_ = ner_world()
        vocab = Vocab(sorted({w.lower() for e in train for w in e.words}))
        w2v = train_word2vec(
            (e.text for e in train),
            Word2VecConfig(dim=64, epochs=2, seed=0),
            vocab=vocab,
        )
        models = {}
        for name, pretrained in (("random init", None), ("word2vec init", w2v)):
            model = Word2VecBiLstmCrf(
                vocab, pretrained=pretrained, rng=np.random.default_rng(5)
            )
            model.fit(train, epochs=6, learning_rate=2e-3, seed=0)
            models[name] = model
        return models

    models = benchmark.pedantic(build, rounds=1, iterations=1)
    corpus, *_ = ner_world()
    gold = [e.labels for e in corpus.test]
    scores = {
        name: entity_prf(gold, model.predict(corpus.test)).f1
        for name, model in models.items()
    }
    from repro.eval import format_table

    report(
        "extra_classic_embeddings",
        format_table(
            ["Initialisation", "entity F1 (%)"],
            [[k, f"{v * 100:.2f}"] for k, v in scores.items()],
            title="Classic Word2Vec+BiLSTM+CRF: embedding initialisation",
        ),
    )
    # Both train; word2vec initialisation must not hurt materially.
    assert scores["word2vec init"] >= scores["random init"] - 0.05, scores
    assert scores["random init"] > 0.3


def test_extra_gamma_sweep(benchmark):
    gammas = (0.5, 0.7, 0.8, 0.9)

    def build():
        return {
            gamma: train_our_ner(seed=50 + i, gamma=gamma)
            for i, gamma in enumerate(gammas)
        }

    models = benchmark.pedantic(build, rounds=1, iterations=1)
    corpus, *_ = ner_world()
    scores = {
        gamma: ner_macro(scores_by_block(model, corpus.test))
        for gamma, model in models.items()
    }
    rows = [[f"γ = {gamma}", f"{value * 100:.2f}"] for gamma, value in scores.items()]
    report(
        "extra_gamma_sweep",
        format_table(
            ["Threshold", "macro-F1 (%)"], rows,
            title="High-confidence selection threshold sweep (paper: γ = 0.8)",
        ),
    )
    # The mechanism should be robust in a broad band around 0.8.
    assert max(scores.values()) - min(scores.values()) < 0.25, scores
