"""Tests for layout templates, the resume generator and rendering."""

import numpy as np
import pytest

from repro.corpus import (
    ALL_TEMPLATES,
    ClassicTemplate,
    CompactTemplate,
    ContentConfig,
    ResumeGenerator,
    TwoColumnTemplate,
    VISUAL_DIM,
    ascii_page,
    render_page,
    sentence_visual_features,
)
from repro.corpus.content import plan_resume
from repro.corpus.templates import PAGE_HEIGHT, PAGE_WIDTH, word_width
from repro.docmodel import BLOCK_SCHEME, iob_to_spans


def rng(seed=0):
    return np.random.default_rng(seed)


class TestTemplates:
    def test_word_width_monotonic(self):
        assert word_width("abcdef", 10) > word_width("ab", 10)
        assert word_width("abc", 14) > word_width("abc", 9)

    @pytest.mark.parametrize("template", ALL_TEMPLATES, ids=lambda t: t.name)
    def test_tokens_inside_page(self, template):
        lines = plan_resume(rng(1))
        tokens, pages = template.layout(lines, rng(2))
        assert tokens
        for token in tokens:
            assert 0 <= token.bbox.x0
            assert token.bbox.x1 <= PAGE_WIDTH + 1e-6
            assert 0 <= token.bbox.y0
            assert token.bbox.y1 <= PAGE_HEIGHT + 1e-6
            assert 1 <= token.page <= len(pages)

    def test_headers_bold_and_larger(self):
        lines = plan_resume(rng(3))
        tokens, _ = ClassicTemplate().layout(lines, rng(4))
        header_tokens = [t for t in tokens if t.block_tag == "Title"]
        body_tokens = [t for t in tokens if t.block_tag == "WorkExp"]
        assert all(t.bold for t in header_tokens)
        assert min(t.font_size for t in header_tokens) > max(
            t.font_size for t in body_tokens
        )

    def test_two_column_routes_sidebar(self):
        template = TwoColumnTemplate()
        lines = plan_resume(rng(5))
        tokens, _ = template.layout(lines, rng(6))
        split = template._columns()[1].x0
        pinfo_x = [t.bbox.x0 for t in tokens if t.block_tag == "PInfo"]
        work_x = [t.bbox.x0 for t in tokens if t.block_tag == "WorkExp"]
        assert max(pinfo_x) < split
        assert min(work_x) >= split

    def test_compact_uses_smaller_fonts(self):
        lines = plan_resume(rng(7))
        compact_tokens, _ = CompactTemplate().layout(lines, rng(8))
        classic_tokens, _ = ClassicTemplate().layout(lines, rng(8))
        assert max(t.font_size for t in compact_tokens) < max(
            t.font_size for t in classic_tokens
        )

    def test_long_content_paginated(self):
        lines = plan_resume(rng(9), ContentConfig.paper())
        _, pages = ClassicTemplate().layout(lines, rng(10))
        assert len(pages) >= 2


class TestResumeGenerator:
    def test_deterministic(self):
        a = ResumeGenerator(seed=42).batch(2)
        b = ResumeGenerator(seed=42).batch(2)
        assert [d.num_tokens for d in a] == [d.num_tokens for d in b]
        assert a[0].sentences[0].text == b[0].sentences[0].text

    def test_different_seeds_differ(self):
        a = ResumeGenerator(seed=1).batch(1)[0]
        b = ResumeGenerator(seed=2).batch(1)[0]
        assert a.sentences[0].text != b.sentences[0].text

    def test_gold_block_labels_valid_iob(self):
        doc = ResumeGenerator(seed=3).batch(1)[0]
        labels = doc.block_iob_labels(BLOCK_SCHEME)
        spans = iob_to_spans(labels, BLOCK_SCHEME)
        assert spans
        # Spans tile the labeled region without overlap by construction.
        for (s1, e1, _), (s2, e2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_every_sentence_has_visual_features(self):
        doc = ResumeGenerator(seed=4).batch(1)[0]
        for sentence in doc.sentences:
            assert sentence.visual is not None
            assert len(sentence.visual) == VISUAL_DIM

    def test_entity_labels_well_formed(self):
        doc = ResumeGenerator(seed=5).batch(1)[0]
        for token in doc.tokens():
            label = token.entity_label
            assert label == "O" or label[:2] in ("B-", "I-")

    def test_stream_matches_batch(self):
        gen = ResumeGenerator(seed=6)
        streamed = [d.doc_id for d in gen.stream(3)]
        batched = [d.doc_id for d in gen.batch(3)]
        assert streamed == batched

    def test_name_is_first_sentence_with_big_font(self):
        doc = ResumeGenerator(seed=7).batch(1)[0]
        first = doc.sentences[0]
        assert first.mean_font_size >= 15.0
        tag, _ = first.majority_block()
        assert tag == "PInfo"


class TestRender:
    @pytest.fixture(scope="class")
    def doc(self):
        return ResumeGenerator(seed=8).batch(1)[0]

    def test_render_page_shape_and_ink(self, doc):
        grid = render_page(doc, 1, rows=50, cols=40)
        assert grid.shape == (50, 40)
        assert grid.sum() > 0
        assert grid.max() <= 4.0

    def test_bold_regions_darker(self, doc):
        grid = render_page(doc, 1)
        # The name banner (bold, large) should be among the darkest rows.
        name_box = doc.sentences[0].bbox
        page = doc.page(1)
        row = int(name_box.y0 / page.height * grid.shape[0])
        assert grid[row : row + 3].max() >= grid.mean()

    def test_visual_features_in_unit_range(self, doc):
        page = doc.page(1)
        for sentence in doc.sentences:
            feats = sentence_visual_features(sentence, page.width, page.height)
            assert feats.shape == (VISUAL_DIM,)
            assert np.all(feats >= 0.0) and np.all(feats <= 1.0 + 1e-9)

    def test_header_features_distinctive(self, doc):
        header = next(
            s for s in doc.sentences if s.majority_block()[0] == "Title"
        )
        body = next(
            s for s in doc.sentences if s.majority_block()[0] == "WorkExp"
        )
        page = doc.page(1)
        hf = sentence_visual_features(header, page.width, page.height)
        bf = sentence_visual_features(body, page.width, page.height)
        assert hf[0] > bf[0]  # font size
        assert hf[1] > bf[1]  # boldness

    def test_ascii_page_contains_tags(self, doc):
        art = ascii_page(doc, 1)
        assert "page 1" in art
        assert "PInfo" in art

    def test_ascii_page_with_predictions(self, doc):
        labels = ["X"] * doc.num_sentences
        art = ascii_page(doc, 1, labels=labels)
        assert "[       X]" in art
