"""Property-based invariants of the synthetic corpus generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import ContentConfig, ResumeGenerator
from repro.corpus.templates import PAGE_HEIGHT, PAGE_WIDTH
from repro.docmodel import BLOCK_SCHEME, BLOCK_TAGS, ENTITY_TAGS, iob_to_spans


@st.composite
def generated_documents(draw):
    seed = draw(st.integers(0, 10_000))
    return ResumeGenerator(seed=seed, content_config=ContentConfig.tiny()).batch(1)[0]


class TestGeneratorInvariants:
    @given(generated_documents())
    @settings(max_examples=15, deadline=None)
    def test_tokens_stay_on_their_pages(self, document):
        page_numbers = {p.number for p in document.pages}
        for token in document.tokens():
            assert token.page in page_numbers
            assert 0 <= token.bbox.x0 <= token.bbox.x1 <= PAGE_WIDTH + 1e-6
            assert 0 <= token.bbox.y0 <= token.bbox.y1 <= PAGE_HEIGHT + 1e-6

    @given(generated_documents())
    @settings(max_examples=15, deadline=None)
    def test_every_token_annotated(self, document):
        for token in document.tokens():
            assert token.block_tag in BLOCK_TAGS
            assert token.block_id is not None
            label = token.entity_label
            assert label == "O" or label[2:] in ENTITY_TAGS

    @given(generated_documents())
    @settings(max_examples=15, deadline=None)
    def test_block_labels_form_valid_spans(self, document):
        ids = document.block_iob_labels(BLOCK_SCHEME)
        spans = iob_to_spans(ids, BLOCK_SCHEME)
        covered = sum(stop - start for start, stop, _ in spans)
        # Every sentence is annotated in the synthetic corpus.
        assert covered == document.num_sentences

    @given(generated_documents())
    @settings(max_examples=15, deadline=None)
    def test_entity_spans_well_formed(self, document):
        # Inside a sentence, an I- label continues the same tag as its
        # predecessor.  A sentence may *start* with I-: layout wrapping and
        # column interleaving legitimately split entities across rows (the
        # same thing happens to real PDF parses).
        for sentence in document.sentences:
            previous = None
            for token in sentence.tokens:
                label = token.entity_label
                if label.startswith("I-") and previous is not None:
                    assert previous.endswith(label[2:]), (previous, label)
                previous = label

    @given(generated_documents())
    @settings(max_examples=15, deadline=None)
    def test_sentences_sorted_in_reading_order(self, document):
        keys = [(s.page, round(s.bbox.y0, 3)) for s in document.sentences]
        pages = [k[0] for k in keys]
        assert pages == sorted(pages)

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_generation_is_pure(self, seed):
        a = ResumeGenerator(seed=seed).batch(1)[0]
        b = ResumeGenerator(seed=seed).batch(1)[0]
        assert [t.word for t in a.tokens()] == [t.word for t in b.tokens()]
        assert [t.bbox.to_tuple() for t in a.tokens()] == [
            t.bbox.to_tuple() for t in b.tokens()
        ]


class TestGeneratorDiversity:
    def test_templates_all_used(self):
        generator = ResumeGenerator(seed=0)
        docs = generator.batch(30)
        # With 3 templates and 30 docs, page-1 left margins should vary.
        margins = {round(min(t.bbox.x0 for t in d.tokens()), 0) for d in docs}
        assert len(margins) >= 2

    def test_work_experience_counts_vary(self):
        config = ContentConfig(work_experiences=(1, 4))
        docs = ResumeGenerator(seed=3, content_config=config).batch(20)
        counts = set()
        for doc in docs:
            ids = {
                t.block_id for t in doc.tokens() if t.block_tag == "WorkExp"
            }
            counts.add(len(ids))
        assert len(counts) >= 3  # the "multiple experiences" property

    def test_multi_page_documents_occur(self):
        docs = ResumeGenerator(
            seed=5, content_config=ContentConfig.paper()
        ).batch(5)
        assert any(d.num_pages >= 2 for d in docs)
        # Work experiences span pages sometimes (the paper's hard case).
        crosses = 0
        for doc in docs:
            for block_id in {t.block_id for t in doc.tokens()}:
                pages = {t.page for t in doc.tokens() if t.block_id == block_id}
                crosses += len(pages) > 1
        assert crosses >= 1
