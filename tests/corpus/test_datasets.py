"""Tests for dataset builders and statistics (Tables I and VI)."""

import pytest

from repro.corpus import (
    ContentConfig,
    NerExample,
    build_block_corpus,
    build_ner_corpus,
    corpus_stats,
    extract_block_examples,
    ner_stats,
)
from repro.corpus import ResumeGenerator
from repro.docmodel import BLOCK_ENTITIES


class TestBlockCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_block_corpus(
            num_pretrain=6, num_train=4, num_validation=2, num_test=2, seed=0
        )

    def test_split_sizes(self, corpus):
        assert len(corpus.pretrain) == 6
        assert len(corpus.train) == 4
        assert len(corpus.validation) == 2
        assert len(corpus.test) == 2

    def test_splits_disjoint(self, corpus):
        texts = {}
        for name, docs in corpus.splits().items():
            for doc in docs:
                signature = doc.sentences[0].text + str(doc.num_tokens)
                assert signature not in texts, f"leak between {texts.get(signature)} and {name}"
                texts[signature] = name

    def test_stats(self, corpus):
        stats = corpus_stats(corpus.pretrain)
        assert stats.num_documents == 6
        assert stats.avg_tokens > 50
        assert stats.avg_sentences > 10
        assert stats.avg_pages >= 1

    def test_stats_empty(self):
        stats = corpus_stats([])
        assert stats.num_documents == 0


class TestExtractBlockExamples:
    def test_blocks_cover_entity_bearing_tags(self):
        docs = ResumeGenerator(seed=1).batch(4)
        examples = extract_block_examples(docs)
        tags = {e.block_tag for e in examples}
        assert "PInfo" in tags
        assert "WorkExp" in tags
        assert tags <= set(BLOCK_ENTITIES)

    def test_labels_align(self):
        docs = ResumeGenerator(seed=2).batch(2)
        for example in extract_block_examples(docs):
            assert len(example.words) == len(example.labels)

    def test_pinfo_block_contains_name_entity(self):
        docs = ResumeGenerator(seed=3).batch(1)
        pinfo = [e for e in extract_block_examples(docs) if e.block_tag == "PInfo"]
        assert pinfo
        assert any(l == "B-Name" for l in pinfo[0].labels)

    def test_filter_by_tag(self):
        docs = ResumeGenerator(seed=4).batch(2)
        only_work = extract_block_examples(docs, block_tags=["WorkExp"])
        assert only_work
        assert all(e.block_tag == "WorkExp" for e in only_work)

    def test_misaligned_example_rejected(self):
        with pytest.raises(ValueError):
            NerExample(["a", "b"], ["O"], block_tag="PInfo")


class TestNerCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_ner_corpus(
            num_train_docs=5, num_validation_docs=2, num_test_docs=2, seed=9
        )

    def test_splits_nonempty(self, corpus):
        assert corpus.train and corpus.validation and corpus.test

    def test_stats_shape(self, corpus):
        stats = ner_stats(corpus.train)
        assert stats.num_samples == len(corpus.train)
        assert stats.avg_tokens > 2
        assert stats.avg_entities >= 1.0  # Table VI: 3.5-4.3 at paper scale

    def test_every_example_has_entity(self, corpus):
        # Section V-B1: each training instance has >= 1 matched entity.
        assert all(e.num_entities >= 1 for e in corpus.train)

    def test_stats_empty(self):
        assert ner_stats([]).num_samples == 0
