"""Tests for resume content planning and entity generators."""

import numpy as np
import pytest

from repro.corpus import ContentConfig, plan_resume
from repro.corpus import entities
from repro.docmodel import BLOCK_TAGS, ENTITY_TAGS


def rng(seed=0):
    return np.random.default_rng(seed)


class TestEntityGenerators:
    def test_person_name_two_words(self):
        assert len(entities.person_name(rng()).split()) == 2

    def test_phone_has_ten_digits(self):
        for seed in range(10):
            phone = entities.phone_number(rng(seed))
            digits = [c for c in phone if c.isdigit()]
            assert len(digits) == 10

    def test_email_shape(self):
        mail = entities.email(rng())
        assert "@" in mail and "." in mail.split("@")[1]

    def test_age_in_range(self):
        for seed in range(20):
            assert 21 <= int(entities.age(rng(seed))) <= 55

    def test_date_range_order(self):
        for seed in range(20):
            dr = entities.date_range(rng(seed))
            assert " - " in dr
            start = dr.split(" - ")[0]
            year = int(start[:4])
            assert 2005 <= year <= 2022

    def test_company_has_suffix(self):
        from repro.corpus.names import COMPANY_SUFFIXES

        company = entities.company(rng())
        assert any(company.endswith(suffix) for suffix in COMPANY_SUFFIXES)

    def test_reproducible(self):
        assert entities.person_name(rng(5)) == entities.person_name(rng(5))


class TestPlanResume:
    def test_always_has_core_sections(self):
        lines = plan_resume(rng(1))
        tags = {line.block_tag for line in lines}
        assert {"PInfo", "EduExp", "WorkExp", "Title"} <= tags
        assert tags <= set(BLOCK_TAGS)

    def test_pinfo_comes_first(self):
        for seed in range(5):
            lines = plan_resume(rng(seed))
            assert lines[0].block_tag == "PInfo"
            assert lines[0].role == "name"

    def test_headers_are_title_blocks(self):
        lines = plan_resume(rng(2))
        headers = [l for l in lines if l.role == "header"]
        assert headers
        assert all(l.block_tag == "Title" for l in headers)

    def test_block_ids_unique_per_instance(self):
        lines = plan_resume(rng(3))
        by_id = {}
        for line in lines:
            by_id.setdefault(line.block_id, set()).add(line.block_tag)
        # One block instance never spans two tags.
        assert all(len(tags) == 1 for tags in by_id.values())

    def test_entities_valid(self):
        lines = plan_resume(rng(4))
        seen = set()
        for line in lines:
            for fragment in line.fragments:
                if fragment.entity != "O":
                    assert fragment.entity in ENTITY_TAGS
                    seen.add(fragment.entity)
        assert "Name" in seen

    def test_section_order_varies(self):
        def order(seed):
            return tuple(
                l.block_tag for l in plan_resume(rng(seed)) if l.role == "header"
            )

        orders = {order(s) for s in range(15)}
        assert len(orders) > 3  # writing styles genuinely differ

    def test_paper_profile_richer_than_tiny(self):
        tiny = plan_resume(rng(6), ContentConfig.tiny())
        paper = plan_resume(rng(6), ContentConfig.paper())
        assert len(paper) > len(tiny)

    def test_multiple_work_instances_possible(self):
        config = ContentConfig(work_experiences=(3, 3))
        lines = plan_resume(rng(7), config)
        ids = {l.block_id for l in lines if l.block_tag == "WorkExp"}
        assert len(ids) == 3
