"""Integration tests for the end-to-end ResumeParser pipeline."""

import numpy as np
import pytest

from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator
from repro.docmodel import BLOCK_ENTITIES, BLOCK_SCHEME
from repro.ner import NerConfig, NerTagger
from repro.pipeline import ParsedResume, ResumeParser
from repro.text import WordPieceTokenizer


@pytest.fixture(scope="module")
def world():
    docs = ResumeGenerator(seed=77, content_config=ContentConfig.tiny()).batch(6)
    tokenizer = WordPieceTokenizer.train(
        [s.text for d in docs for s in d.sentences], vocab_size=500, min_frequency=1
    )
    config = ResuFormerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        sentence_layers=1,
        sentence_heads=2,
        document_layers=1,
        document_heads=2,
        visual_proj_dim=8,
        dropout=0.0,
    )
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(1))
    classifier = BlockClassifier(
        encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(2)
    )
    trainer = BlockTrainer(classifier, encoder_lr=1e-3, head_lr=1e-2, seed=0)
    trainer.fit(
        [LabeledDocument.from_gold(d) for d in docs[:4]],
        validation=[LabeledDocument.from_gold(docs[4])],
        epochs=3,
        patience=3,
    )
    ner_config = NerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32, layers=1, heads=2, lstm_hidden=16, dropout=0.0,
    )
    tagger = NerTagger(ner_config, tokenizer, rng=np.random.default_rng(3))
    return docs, classifier, tagger


class TestResumeParser:
    def test_parse_returns_blocks(self, world):
        docs, classifier, tagger = world
        parser = ResumeParser(classifier, tagger)
        parsed = parser.parse(docs[5])
        assert isinstance(parsed, ParsedResume)
        assert parsed.doc_id == docs[5].doc_id
        assert parsed.blocks  # at least one block found

    def test_blocks_partition_sentences(self, world):
        docs, classifier, tagger = world
        parser = ResumeParser(classifier, tagger)
        parsed = parser.parse(docs[5])
        seen = [i for b in parsed.blocks for i in b.sentence_indices]
        assert len(seen) == len(set(seen))  # no overlap
        assert all(0 <= i < docs[5].num_sentences for i in seen)

    def test_entities_only_in_allowed_blocks(self, world):
        docs, classifier, tagger = world
        parser = ResumeParser(classifier, tagger)
        parsed = parser.parse(docs[5])
        for block in parsed.blocks:
            allowed = BLOCK_ENTITIES.get(block.tag, ())
            for entity in block.entities:
                assert entity.tag in allowed

    def test_parse_without_ner(self, world):
        docs, classifier, _ = world
        parser = ResumeParser(classifier, ner_tagger=None)
        parsed = parser.parse(docs[5])
        assert all(not b.entities for b in parsed.blocks)

    def test_to_dict_roundtrip(self, world):
        import json

        docs, classifier, tagger = world
        parser = ResumeParser(classifier, tagger)
        payload = parser.parse(docs[5]).to_dict()
        encoded = json.dumps(payload)
        assert json.loads(encoded)["doc_id"] == docs[5].doc_id

    def test_blocks_by_tag(self, world):
        docs, classifier, tagger = world
        parser = ResumeParser(classifier, tagger)
        parsed = parser.parse(docs[5])
        for tag in ("WorkExp", "Title"):
            for block in parsed.blocks_by_tag(tag):
                assert block.tag == tag

    def test_segment_to_ner_examples(self, world):
        from repro.docmodel import BLOCK_ENTITIES
        from repro.pipeline import segment_to_ner_examples

        docs, classifier, _ = world
        examples = segment_to_ner_examples(classifier, docs[:3])
        assert examples, "trained classifier should find entity-bearing blocks"
        for example in examples:
            assert example.block_tag in BLOCK_ENTITIES
            assert example.words
            assert example.labels == ["O"] * len(example.words)

    def test_trained_classifier_recovers_gold_blocks(self, world):
        # After a short fit, predictions should beat the all-O/random floor
        # on a training document (the single-column ones are easiest).
        docs, classifier, _ = world
        agreements = []
        for doc in docs[:4]:
            predicted = classifier.predict(doc)
            gold = BLOCK_SCHEME.decode(doc.block_iob_labels(BLOCK_SCHEME))
            agreements.append(
                sum(p == g for p, g in zip(predicted, gold)) / len(gold)
            )
        assert max(agreements) > 0.3
