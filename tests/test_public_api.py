"""Public-API consistency: exports resolve and carry docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.text",
    "repro.docmodel",
    "repro.corpus",
    "repro.core",
    "repro.ner",
    "repro.baselines",
    "repro.eval",
    "repro.obs",
    "repro.pipeline",
    "repro.persistence",
    "repro.tools",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_module_importable_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", [p for p in PACKAGES if p != "repro.tools"])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    undocumented = []
    for symbol in exported:
        obj = getattr(module, symbol, None)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"{name}.{symbol}")
    assert not undocumented, undocumented
