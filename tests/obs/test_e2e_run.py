"""End-to-end: a tiny instrumented run produces a complete, renderable log.

Trains the block classifier and the pre-training objectives on a tiny
corpus under one telemetry session — with the default alert rules armed
and a drift monitor attached — runs batched inference, and then checks
the JSONL run log carries everything the issue promises: monotone step
numbers, all three pre-training loss series (wp/cl/ns), gradient norms,
per-stage spans, cache hit/miss metrics, zero alerts on the healthy run,
and drift checks against the training-corpus reference — and that the
report CLI renders it without error.  A deliberately destabilized twin
run shows the nan-loss and loss-spike rules firing.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import BlockClassifier, BlockTrainer, LabeledDocument, Pretrainer
from repro.obs import read_run_log
from repro.obs.drift import ReferenceProfile
from repro.obs.report import main as report_main
from repro.obs.report import summarize


@pytest.fixture(scope="module")
def run_events(tmp_path_factory):
    # Build the world inline (module scope) so the whole e2e run happens
    # once; assertions below all read the same event list.
    from repro.core import Featurizer, HierarchicalEncoder, ResuFormerConfig
    from repro.corpus import ContentConfig, ResumeGenerator
    from repro.text import WordPieceTokenizer

    documents = ResumeGenerator(
        seed=11, content_config=ContentConfig.tiny()
    ).batch(4)
    tokenizer = WordPieceTokenizer.train(
        [s.text for d in documents for s in d.sentences],
        vocab_size=400,
        min_frequency=1,
    )
    config = ResuFormerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        sentence_layers=1,
        sentence_heads=2,
        document_layers=1,
        document_heads=2,
        visual_proj_dim=8,
        dropout=0.0,
    )
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(11))
    model = BlockClassifier(
        encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(12)
    )
    labeled = [LabeledDocument.from_gold(d) for d in documents]

    path = str(tmp_path_factory.mktemp("obs") / "run.jsonl")
    tracked = (
        "sentence_length", "sentences_per_doc", "bbox_height",
        "bbox_y_center", "token_oov_rate", "block_label", "crf_confidence",
    )
    with obs.telemetry(
        run_log=path,
        config={"epochs": 2, "batch_size": 2},
        seeds={"generator": 11, "encoder": 11, "classifier": 12},
        alerts=True,
    ) as tel:
        Pretrainer(encoder, featurizer, seed=11).fit(
            documents, epochs=1, batch_size=2
        )
        BlockTrainer(model, seed=11).fit(
            labeled, validation=labeled[:2], epochs=2, batch_size=2
        )
        # Capture the reference from the trained model's own predictions
        # (a monitor over an empty template just accumulates), then watch
        # a serving pass over the same corpus — which must score stable.
        capture = obs.DriftMonitor(
            ReferenceProfile.template(tracked), check_every=10**9
        )
        tel.drift = capture
        model.predict_batch(documents, batch_size=2)
        tel.drift = obs.DriftMonitor(
            capture.current_profile(), check_every=16
        )
        model.predict_batch(documents, batch_size=2)
        featurizer.cache.export_metrics(obs.get_telemetry().metrics)
    return path, read_run_log(path)


class TestRunLog:
    def test_lifecycle_brackets_the_run(self, run_events):
        _, events = run_events
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"
        assert events[-1]["status"] == "ok"
        assert events[0]["seeds"]["generator"] == 11
        assert events[0]["config"]["epochs"] == 2

    def test_step_numbers_are_monotone_per_phase(self, run_events):
        _, events = run_events
        steps = [e for e in events if e["event"] == "step"]
        assert steps, "no step events recorded"
        by_phase = {}
        for event in steps:
            by_phase.setdefault(event["phase"], []).append(event["step"])
        assert set(by_phase) == {"pretrain", "block_train"}
        for phase, numbers in by_phase.items():
            assert numbers == sorted(numbers), f"{phase} steps not monotone"
            assert len(set(numbers)) == len(numbers), f"{phase} steps repeat"

    def test_all_three_pretrain_loss_series(self, run_events):
        _, events = run_events
        pretrain_steps = [
            e for e in events
            if e["event"] == "step" and e["phase"] == "pretrain"
        ]
        for objective in ("wp", "cl", "ns"):
            values = [
                e["losses"][objective]
                for e in pretrain_steps
                if objective in e["losses"]
            ]
            assert values, f"no {objective} loss series in the run log"
            assert all(np.isfinite(v) for v in values)
        # λ-weighted contributions ride along (Eq. 7).
        assert any(e.get("weighted_losses") for e in pretrain_steps)

    def test_grad_norms_recorded(self, run_events):
        _, events = run_events
        norms = [
            e["grad_norm"] for e in events
            if e["event"] == "step" and e.get("grad_norm") is not None
        ]
        assert norms, "no gradient norms in the run log"
        assert all(np.isfinite(n) and n >= 0 for n in norms)

    def test_per_stage_spans_present(self, run_events):
        _, events = run_events
        names = {e["name"] for e in events if e["event"] == "span"}
        for expected in (
            "featurize", "encode", "decode", "predict_batch",
            "pretrain.step", "block_train.epoch", "train.apply_step",
        ):
            assert expected in names, f"span {expected!r} missing"
        # decode spans nest under predict_batch through parent links.
        spans = [e for e in events if e["event"] == "span"]
        by_id = {e["span_id"]: e for e in spans}
        decode = next(e for e in spans if e["name"] == "decode")
        assert by_id[decode["parent_id"]]["name"] == "predict_batch"

    def test_eval_events_carry_validation_scores(self, run_events):
        _, events = run_events
        scores = [
            e["val_accuracy"] for e in events
            if e["event"] == "eval" and "val_accuracy" in e
        ]
        assert scores and all(0.0 <= s <= 1.0 for s in scores)

    def test_cache_metrics_in_final_snapshot(self, run_events):
        _, events = run_events
        snapshot = [e for e in events if e["event"] == "metric_snapshot"][-1]
        metrics = snapshot["metrics"]
        assert metrics["feature_cache.hits"]["series"][0]["value"] > 0
        assert "feature_cache.misses" in metrics
        assert metrics["feature_cache.hit_rate"]["series"][0]["value"] > 0
        assert metrics["train.documents"]["series"][0]["value"] > 0
        assert "inference.padding_waste" in metrics
        assert "nn.optimizer_step_seconds" in metrics
        loss_series = metrics["pretrain.loss"]["series"]
        objectives = {s["labels"]["objective"] for s in loss_series}
        assert {"wp", "cl", "ns", "total"} <= objectives


class TestAlerts:
    def test_healthy_run_fires_zero_alerts(self, run_events):
        _, events = run_events
        alerts = [e for e in events if e["event"] == "alert"]
        assert alerts == [], f"healthy run raised alerts: {alerts}"

    def test_destabilized_run_fires_nan_and_spike(self, tmp_path):
        # A run whose loss explodes and then goes NaN must trip both the
        # z-score spike rule and the critical non-finite rule; the alert
        # events land in the log with their series and step attached.
        path = str(tmp_path / "unstable.jsonl")
        with obs.telemetry(run_log=path, alerts=True) as tel:
            rng = np.random.default_rng(3)
            loss = 2.0
            for step in range(1, 16):
                loss = loss * 0.97 + rng.normal(0.0, 0.01)
                tel.event(
                    "step", phase="block_train", step=step,
                    losses={"crf": float(loss)},
                )
            tel.event(  # divergence: the loss explodes...
                "step", phase="block_train", step=16, losses={"crf": 4000.0}
            )
            tel.event(  # ...and the next step is NaN
                "step", phase="block_train", step=17,
                losses={"crf": float("nan")},
            )
        events = read_run_log(path)
        alerts = [e for e in events if e["event"] == "alert"]
        by_rule = {a["rule"]: a for a in alerts}
        assert "loss-spike" in by_rule, alerts
        assert "nan-loss" in by_rule, alerts
        assert by_rule["nan-loss"]["severity"] == "critical"
        assert by_rule["loss-spike"]["series"] == "block_train.losses.crf"
        assert by_rule["loss-spike"]["step"] == 16
        # the session counter saw both severities
        snapshot = [e for e in events if e["event"] == "metric_snapshot"][-1]
        fired = snapshot["metrics"]["alerts.fired"]["series"]
        assert {s["labels"]["severity"] for s in fired} == {
            "warning", "critical",
        }

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_destabilized_real_training_run_fires_nan(self, tmp_path):
        # Same wiring, real optimizer: an absurd learning rate drives the
        # CRF loss non-finite within a few epochs and the nan-loss rule
        # catches it from the live event stream.
        from repro.core import Featurizer, HierarchicalEncoder, ResuFormerConfig
        from repro.corpus import ContentConfig, ResumeGenerator
        from repro.text import WordPieceTokenizer

        documents = ResumeGenerator(
            seed=5, content_config=ContentConfig.tiny()
        ).batch(2)
        tokenizer = WordPieceTokenizer.train(
            [s.text for d in documents for s in d.sentences],
            vocab_size=300, min_frequency=1,
        )
        config = ResuFormerConfig(
            vocab_size=len(tokenizer.vocab), hidden_dim=16,
            sentence_layers=1, sentence_heads=2, document_layers=1,
            document_heads=2, visual_proj_dim=4, dropout=0.0,
        )
        encoder = HierarchicalEncoder(config, rng=np.random.default_rng(5))
        model = BlockClassifier(
            encoder, Featurizer(tokenizer, config), lstm_hidden=8,
            rng=np.random.default_rng(6),
        )
        labeled = [LabeledDocument.from_gold(d) for d in documents]
        path = str(tmp_path / "diverged.jsonl")
        with obs.telemetry(run_log=path, alerts=True):
            BlockTrainer(
                model, encoder_lr=1e4, head_lr=1e4, max_grad_norm=None,
                seed=5,
            ).fit(labeled, epochs=6, batch_size=1)
        events = read_run_log(path)
        rules = {e["rule"] for e in events if e["event"] == "alert"}
        assert "nan-loss" in rules, (
            f"divergent training fired {sorted(rules)} instead"
        )


class TestDrift:
    def test_drift_checks_ran_and_corpus_is_stable(self, run_events):
        _, events = run_events
        checks = [e for e in events if e["event"] == "drift"]
        assert checks, "no drift events in the run log"
        # The final window holds predictions over the very documents the
        # reference was captured from — nothing may score as drifted.
        assert checks[-1]["ok"] is True, checks[-1]
        scores = checks[-1]["scores"]
        assert "sentence_length" in scores
        assert "block_label" in scores
        assert "crf_confidence" in scores, (
            "CRF-marginal confidences were not fed to the monitor"
        )
        assert scores["crf_confidence"]["status"] in ("ok", "moderate")

    def test_drift_gauges_in_final_snapshot(self, run_events):
        _, events = run_events
        snapshot = [e for e in events if e["event"] == "metric_snapshot"][-1]
        metrics = snapshot["metrics"]
        assert metrics["drift.checks"]["series"][0]["value"] > 0
        features = {
            s["labels"]["feature"] for s in metrics["drift.psi"]["series"]
        }
        assert "sentence_length" in features


class TestReport:
    def test_summarize_renders_every_section(self, run_events):
        _, events = run_events
        text = summarize(events)
        for needle in (
            "run run-", "steps:", "loss curves:", "pretrain/wp",
            "block_train/crf", "validation:", "span breakdown:",
            "slowest spans:", "metrics (final snapshot):", "events:",
            "drift checks:",
        ):
            assert needle in text, f"report lacks {needle!r}\n{text}"

    def test_cli_exits_zero(self, run_events, capsys):
        path, _ = run_events
        assert report_main([path]) == 0
        out = capsys.readouterr().out
        assert "span breakdown:" in out
        assert "p95" in out  # percentile columns in the span table

    def test_cli_json_shares_the_gate_summary(self, run_events, capsys):
        import json

        from repro.obs.compare import run_summary

        path, events = run_events
        assert report_main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["summary"] == run_summary(events)
        assert payload["alerts"] == []
        assert payload["drift"], "drift events missing from the JSON report"
        assert any(
            key.startswith("loss.block_train.crf") for key in payload["summary"]
        )

    def test_cli_rejects_missing_file(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err
