"""Sampling profiler: attribution correctness and the disabled fast path.

Two kinds of guarantee.  *Disabled*: constructing nothing keeps the span
enter/exit path at one module-global truthiness check and the thread
registry empty — the no-op trace stays in the same time class as
``test_noop_overhead`` pins.  *Enabled*: a seeded busy loop inside a span
must dominate the sample population, the hot function must be the loop
body, and ``profile`` events must land in the run log as summation-exact
deltas.
"""

import threading
import time

from repro import obs
from repro.obs import tracing
from repro.obs.profiler import DEFAULT_PROFILE_HZ, Profiler, collapse_frame
from repro.obs.report import aggregate_profile


def _best_of(rounds, fn):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _burn(seconds):
    """Deterministic CPU burn: the function the sampler must catch."""
    deadline = time.perf_counter() + seconds
    value = 0
    while time.perf_counter() < deadline:
        for i in range(200):
            value += i * i
    return value


class TestDisabledPath:
    def test_no_profiler_means_no_thread_tracking(self):
        assert not tracing._TRACKING
        assert tracing.span_stacks_snapshot() == {}

    def test_span_registry_untouched_without_profiler(self):
        with obs.telemetry() as tel:
            with obs.trace("plain"):
                assert tracing._THREAD_STACKS == {}
        assert tel.profiler is None

    def test_noop_trace_overhead_unchanged(self):
        """Profiler support must not tax the session-off fast path."""
        assert obs.get_telemetry() is None
        calls = 20_000

        def instrumented():
            for _ in range(calls):
                with obs.trace("hot"):
                    pass

        per_call = _best_of(5, instrumented) / calls
        assert per_call < 5e-6, (
            f"no-op trace costs {per_call * 1e6:.2f}µs/call with profiler "
            "support compiled in; the fast path regressed"
        )

    def test_session_without_profiler_span_overhead(self):
        """With a session but no profiler, span enter/exit pays only the
        ``_TRACKING`` truthiness check on top of the previous cost."""
        calls = 5_000
        with obs.telemetry():
            def spans():
                for _ in range(calls):
                    with obs.trace("hot"):
                        pass

            per_call = _best_of(5, spans) / calls
        assert per_call < 5e-5, (
            f"traced span costs {per_call * 1e6:.2f}µs/call without a "
            "profiler; the tracking guard is too expensive"
        )

    def test_tracking_refcount_restores_disabled_state(self):
        tracing.enable_span_thread_tracking()
        tracing.enable_span_thread_tracking()
        assert tracing._TRACKING
        tracing.disable_span_thread_tracking()
        assert tracing._TRACKING  # still one holder
        tracing.disable_span_thread_tracking()
        assert not tracing._TRACKING
        assert tracing.span_stacks_snapshot() == {}


class TestCollapse:
    def test_collapse_frame_shape(self):
        import sys

        frame = sys._getframe()
        collapsed, leaf = collapse_frame(frame)
        assert leaf.endswith(":test_collapse_frame_shape")
        assert collapsed.split(";")[-1] == leaf  # root first, leaf last

    def test_depth_cap_keeps_leaf_frames(self):
        import sys

        def deep(n):
            if n:
                return deep(n - 1)
            return collapse_frame(sys._getframe(), max_depth=4)

        collapsed, leaf = deep(10)
        parts = collapsed.split(";")
        assert parts[0] == "..."
        assert len(parts) == 5  # marker + 4 leaf-most frames
        assert leaf.endswith(":deep")

    def test_invalid_hz_rejected(self):
        try:
            Profiler(hz=0)
        except ValueError:
            pass
        else:
            raise AssertionError("hz=0 must be rejected")


class TestSampling:
    def test_busy_loop_dominates_samples(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with obs.telemetry(run_log=path, profile_hz=250) as tel:
            with obs.trace("hot_span"):
                _burn(0.4)
        profile = tel.summary()["profile"]
        assert profile["samples"] >= 10, (
            f"only {profile['samples']} samples over a 0.4s burn at 250hz"
        )
        functions = {f["function"]: f["samples"]
                     for f in profile["hot_functions"]}
        burn_samples = sum(
            count for name, count in functions.items()
            if name.endswith(":_burn")
        )
        assert burn_samples / profile["samples"] >= 0.5, (
            f"_burn holds {burn_samples}/{profile['samples']} samples; "
            f"hot functions: {functions}"
        )
        self_time = profile["span_self_time"]
        assert "hot_span" in self_time
        top_span = max(self_time, key=lambda k: self_time[k]["samples"])
        assert top_span == "hot_span"

    def test_profile_events_stream_and_sum(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        profiler = Profiler(hz=250, flush_interval=0.1)
        with obs.telemetry(run_log=path, profiler=profiler) as tel:
            with obs.trace("hot_span"):
                _burn(0.4)
        events = obs.read_run_log(path)
        profiles = [e for e in events if e["event"] == "profile"]
        assert len(profiles) >= 2  # periodic flushes plus the final one
        summed = sum(e["samples"] for e in profiles)
        assert summed == tel.summary()["profile"]["samples"]
        aggregated = aggregate_profile(events)
        assert aggregated["samples"] == summed
        # the log and the in-memory summary agree on the hot function
        assert aggregated["hot_functions"][0]["function"].endswith(":_burn")
        # profile events must precede the final metric snapshot so a
        # reader of the closed log sees the complete delta chain
        kinds = [e["event"] for e in events]
        assert kinds.index("metric_snapshot") > max(
            i for i, k in enumerate(kinds) if k == "profile"
        )

    def test_sampler_only_metric_is_bounded(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with obs.telemetry(run_log=path, profile_hz=250) as tel:
            _burn(0.2)
        snapshot = tel.metrics.snapshot()
        profiler_metrics = [k for k in snapshot if k.startswith("profiler.")]
        assert profiler_metrics == ["profiler.samples"]
        labels = {
            tuple(sorted(series["labels"]))
            for series in snapshot["profiler.samples"]["series"]
        }
        assert labels == {("thread",)}  # never stack identity

    def test_stop_is_idempotent_and_leaves_tracking_off(self):
        profiler = Profiler(hz=200)
        profiler.start()
        assert tracing._TRACKING
        time.sleep(0.05)
        profiler.stop()
        profiler.stop()
        assert not profiler.running
        assert not tracing._TRACKING

    def test_memory_watermarks_recorded(self):
        profiler = Profiler(hz=250)
        with obs.telemetry(profiler=profiler) as tel:
            with obs.trace("memory_span"):
                _burn(0.25)
        memory = tel.summary()["profile"]["memory"]
        # /proc/self/statm exists on the CI runners; peaks are plausible
        assert memory.get("peak_rss_bytes", 0) > 1 << 20
        assert memory.get("span_peak_rss_bytes", {}).get("memory_span", 0) > 0

    def test_other_threads_are_sampled_and_named(self):
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                sum(i for i in range(100))

        worker = threading.Thread(target=spin, name="busy-helper")
        worker.start()
        try:
            profiler = Profiler(hz=250)
            with obs.telemetry(profiler=profiler) as tel:
                time.sleep(0.3)
        finally:
            stop.set()
            worker.join()
        stacks = tel.summary()["profile"]["stacks"]
        assert any(s["thread"] == "busy-helper" for s in stacks)

    def test_default_hz_is_not_a_round_divisor(self):
        # phase-locking guard: 67hz must not divide common 10/100/1000hz
        # periodic work; a refactor to a round number silently reintroduces
        # aliasing artifacts
        assert DEFAULT_PROFILE_HZ == 67.0
