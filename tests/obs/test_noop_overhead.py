"""No-op fast path: instrumentation must cost ~nothing without a session.

The contract every hot path relies on: with no telemetry installed,
``obs.trace`` returns a shared null context and metric guards reduce to a
single ``ContextVar.get``.  The timing guard is deliberately generous —
it pins the *order of magnitude* (sub-microsecond-class per call), not a
machine-specific constant, so it stays green on noisy CI runners while
still catching an accidental always-on slow path (span allocation, dict
churn, lock acquisition) which would blow past it by 10-100x.
"""

import time

from repro import obs
from repro.obs.alerts import AlertEngine
from repro.obs.drift import DriftMonitor, ReferenceProfile


def _best_of(rounds, fn):
    """Minimum wall time over ``rounds`` runs (noise only inflates)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class TestNoOpPath:
    def test_trace_returns_shared_null_context(self):
        assert obs.get_telemetry() is None
        first = obs.trace("anything", batch=16)
        second = obs.trace("something_else")
        assert first is second  # the reusable singleton, no allocation

    def test_trace_is_noop_inside(self):
        with obs.trace("stage") as span:
            assert span is None  # nullcontext yields None
        assert obs.current_span() is None

    def test_emit_without_session_is_noop(self):
        obs.emit("step", step=1)  # must not raise, nothing to assert

    def test_trace_overhead_is_negligible(self):
        calls = 20_000

        def instrumented():
            for _ in range(calls):
                with obs.trace("hot"):
                    pass

        # Generous ceiling: 5µs per no-op trace call, ~10x headroom over
        # the observed cost of ContextVar.get + nullcontext enter/exit.
        best = _best_of(5, instrumented)
        per_call = best / calls
        assert per_call < 5e-6, (
            f"no-op trace costs {per_call * 1e6:.2f}µs/call; the fast path "
            "is no longer a fast path"
        )

    def test_guarded_metric_write_overhead_is_negligible(self):
        calls = 20_000

        def guarded():
            for _ in range(calls):
                tel = obs.get_telemetry()
                if tel is not None:  # pragma: no cover - session is off
                    tel.metrics.counter("x").inc()

        best = _best_of(5, guarded)
        per_call = best / calls
        assert per_call < 2e-6, (
            f"telemetry guard costs {per_call * 1e6:.2f}µs/call"
        )

    def test_overhead_scales_like_a_plain_context_manager(self):
        """The no-op trace must stay within a small factor of the cheapest
        possible python context manager — catching an accidental span
        allocation on the disabled path."""
        import contextlib

        calls = 20_000
        reference = contextlib.nullcontext()

        def bare():
            for _ in range(calls):
                with reference:
                    pass

        def instrumented():
            for _ in range(calls):
                with obs.trace("hot"):
                    pass

        bare_best = _best_of(5, bare)
        instrumented_best = _best_of(5, instrumented)
        # trace() adds one ContextVar.get + a None check + a function call
        # on top of the bare null context; 20x covers interpreter jitter.
        assert instrumented_best < bare_best * 20 + 1e-3

    def test_constructing_watchers_does_not_install_a_session(self):
        """Building an alert engine or drift monitor must never activate
        telemetry — only ``obs.telemetry(...)`` installs a session, so
        inactive call sites keep the one-ContextVar.get fast path."""
        AlertEngine()
        DriftMonitor(ReferenceProfile.template(("sentence_length",)))
        assert obs.get_telemetry() is None
        assert obs.trace("still") is obs.trace("null")

    def test_drift_guard_without_session_is_one_contextvar_get(self):
        """The shape both predict paths use: ``telemetry.drift`` is only
        dereferenced after the session guard, so inactive serving pays
        the same single ``ContextVar.get`` as every other site."""
        calls = 20_000

        def guarded():
            for _ in range(calls):
                tel = obs.get_telemetry()
                if tel is not None and tel.drift is not None:
                    raise AssertionError(  # pragma: no cover - session off
                        "session unexpectedly active"
                    )

        per_call = _best_of(5, guarded) / calls
        assert per_call < 2e-6, (
            f"inactive drift guard costs {per_call * 1e6:.2f}µs/call"
        )
