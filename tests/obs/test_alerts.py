"""Unit tests for the declarative alert engine.

Covers the condition factories over degenerate series (empty, constant,
single-point — the cases that must never fire), the engine's series
derivation from the event stream, cooldown suppression, gauge-rule
sampling, and the session wiring (alert events, counters, raise_on).
"""

import math
import time

import pytest

from repro import obs
from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertError,
    Rule,
    above,
    below,
    collapse,
    default_rules,
    non_finite,
    stalled,
    throughput_drop,
    zscore_above,
)


class TestConditions:
    def test_non_finite_fires_on_nan_and_inf_only(self):
        check = non_finite()
        assert check([1.0, float("nan")]) is not None
        assert check([float("inf")]) is not None
        assert check([1.0, 2.0]) is None
        assert check([]) is None

    def test_zscore_fires_on_spike_not_on_drop(self):
        check = zscore_above(z=4.0, min_points=4)
        history = [1.0, 1.1, 0.9, 1.0, 1.05]
        assert check(history + [50.0]) is not None
        assert check(history + [0.0]) is None  # drops are healthy

    def test_zscore_never_fires_on_constant_series(self):
        check = zscore_above(z=1.0, min_points=3)
        assert check([2.0] * 10) is None
        assert check([2.0] * 9 + [2.0000001]) is None  # std ~ 0 guarded

    def test_zscore_never_fires_on_short_or_single_point_series(self):
        check = zscore_above(z=1.0, min_points=5)
        assert check([]) is None
        assert check([7.0]) is None
        assert check([1.0, 100.0]) is None

    def test_threshold_conditions(self):
        assert above(10.0)([5.0, 11.0]) is not None
        assert above(10.0)([11.0, 5.0]) is None  # only the newest counts
        assert below(0.1)([0.05]) is not None
        assert below(0.1, min_points=3)([0.05]) is None

    def test_collapse_floor_and_crash(self):
        check = collapse(floor=1e-4, ratio=0.05, min_points=4)
        assert check([1.0, 1.0, 1.0, 1.0, 0.0]) is not None  # floor
        assert check([1.0, 1.0, 1.0, 1.0, 0.01]) is not None  # 1% of median
        # gradual convergence: each step well above 5% of the median
        assert check([1.0, 0.8, 0.6, 0.5, 0.4]) is None
        assert check([0.5]) is None  # single point, no history

    def test_stalled_needs_floor_and_factor(self):
        check = stalled(factor=10.0, min_points=3, floor_seconds=0.25)
        gaps = [0.01, 0.012, 0.011]
        assert check(gaps + [0.5]) is not None  # 45x median and > floor
        assert check(gaps + [0.1]) is None  # 9x but under the floor

    def test_throughput_drop_is_sustained(self):
        check = throughput_drop(factor=2.0, recent=3, min_points=8)
        steady = [0.01] * 10
        assert check(steady) is None
        assert check([0.01] * 7 + [0.03, 0.03, 0.03]) is not None
        assert check([0.01] * 9 + [0.03]) is None  # one slow step only


class TestRule:
    def test_rejects_bad_window_and_severity(self):
        with pytest.raises(ValueError):
            Rule("r", "x", non_finite(), window=0)
        with pytest.raises(ValueError):
            Rule("r", "x", non_finite(), severity="fatal")

    def test_default_rules_cover_the_issue_checklist(self):
        names = {rule.name for rule in default_rules()}
        assert {
            "nan-loss", "loss-spike", "stalled-step", "throughput-drop",
            "scl-collapse", "dnsp-collapse",
        } <= names


class TestEngine:
    def test_derives_loss_and_field_series_from_step_events(self):
        engine = AlertEngine(rules=[
            Rule("nan", "*losses.*", non_finite(), window=1),
            Rule("grad", "pretrain.grad_norm", above(100.0), window=4),
        ])
        engine.observe_event("step", {
            "phase": "pretrain", "step": 1,
            "losses": {"wp": 1.0, "cl": 2.0}, "grad_norm": 3.0,
        })
        assert set(engine.series_names()) >= {
            "pretrain.losses.wp", "pretrain.losses.cl", "pretrain.grad_norm",
        }
        fired = engine.observe_event("step", {
            "phase": "pretrain", "step": 2,
            "losses": {"wp": float("nan")}, "grad_norm": 500.0,
        })
        assert {alert.rule for alert in fired} == {"nan", "grad"}

    def test_non_step_events_and_non_numeric_fields_are_ignored(self):
        engine = AlertEngine(rules=[Rule("any", "*", above(-1e9), window=1)])
        assert engine.observe_event("eval", {"val_f1": 0.5}) == []
        engine.observe_event("step", {
            "phase": "t", "note": "text", "flag": True, "losses": None,
        })
        assert all("note" not in s and "flag" not in s
                   for s in engine.series_names())

    def test_cooldown_suppresses_alert_storms(self):
        engine = AlertEngine(rules=[
            Rule("high", "t.losses.x", above(0.0), window=4, cooldown=3),
        ])
        total = 0
        for step in range(8):
            total += len(engine.observe_event(
                "step", {"phase": "t", "step": step, "losses": {"x": 1.0}}
            ))
        # fires at steps 0 and 4: three observations of cooldown after each
        assert total == 2

    def test_step_gap_series_feeds_the_watchdog(self):
        engine = AlertEngine(rules=[
            Rule("stall", "*.step_gap",
                 stalled(factor=5.0, min_points=2, floor_seconds=0.0),
                 window=8),
        ])
        for step in range(4):
            engine.observe_event("step", {"phase": "t", "step": step})
        time.sleep(0.02)
        fired = engine.observe_event("step", {"phase": "t", "step": 4})
        assert [alert.rule for alert in fired] == ["stall"]
        assert fired[0].series == "t.step_gap"

    def test_span_series(self):
        engine = AlertEngine(rules=[
            Rule("slow-span", "span.encode", above(1.0), window=1),
        ])

        class FakeSpan:
            name = "encode"
            duration = 2.5

        fired = engine.observe_span(FakeSpan())
        assert fired and fired[0].value == 2.5

    def test_gauge_rules_sample_the_bound_registry(self):
        registry = obs.MetricsRegistry()
        registry.gauge("feature_cache.hit_rate").set(0.01)
        engine = AlertEngine(rules=[
            Rule("cold-cache", "gauge:feature_cache.hit_rate",
                 below(0.5, min_points=2), window=4),
        ])
        engine.bind(registry)
        engine.observe_event("step", {"phase": "t", "step": 1})
        fired = engine.observe_event("step", {"phase": "t", "step": 2})
        assert [alert.rule for alert in fired] == ["cold-cache"]

    def test_rejects_unknown_raise_on(self):
        with pytest.raises(ValueError):
            AlertEngine(raise_on={"catastrophic"})

    def test_count_by_severity(self):
        engine = AlertEngine(rules=[
            Rule("a", "t.losses.x", non_finite(), window=1,
                 severity="critical"),
        ])
        engine.observe_event(
            "step", {"phase": "t", "losses": {"x": float("nan")}}
        )
        assert engine.count() == 1
        assert engine.count("critical") == 1
        assert engine.count("info") == 0


class TestSessionWiring:
    def test_true_installs_default_rules(self):
        with obs.telemetry(alerts=True) as tel:
            assert {r.name for r in tel.alerts.rules} == {
                r.name for r in default_rules()
            }

    def test_rule_list_builds_an_engine(self):
        rules = [Rule("only", "t.losses.x", non_finite(), window=1)]
        with obs.telemetry(alerts=rules) as tel:
            assert [r.name for r in tel.alerts.rules] == ["only"]

    def test_alert_logged_and_counted_before_raise(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        engine = AlertEngine(raise_on={"critical"})
        with pytest.raises(AlertError) as excinfo:
            with obs.telemetry(run_log=path, alerts=engine) as tel:
                tel.event("step", phase="t", step=1,
                          losses={"crf": float("nan")})
        assert excinfo.value.alert.rule == "nan-loss"
        events = obs.read_run_log(path)
        kinds = [e["event"] for e in events]
        assert "alert" in kinds
        # the session closed with error status, evidence intact
        assert events[-1]["event"] == "run_end"
        assert events[-1]["status"] == "error"
        assert events[-1]["error"] == "AlertError"

    def test_summary_carries_fired_alerts(self):
        with obs.telemetry(alerts=True) as tel:
            tel.event("step", phase="t", step=1, losses={"x": float("inf")})
            summary = tel.summary()
        assert summary["alerts"][0]["rule"] == "nan-loss"

    def test_alert_fields_roundtrip(self):
        alert = Alert(rule="r", severity="warning", series="s",
                      message="m", value=1.0, step=3, phase="t")
        fields = alert.to_fields()
        assert fields["step"] == 3 and fields["phase"] == "t"
        assert "step" not in Alert(
            rule="r", severity="info", series="s", message="m", value=0.0
        ).to_fields()


class TestThreadSafety:
    """Events may arrive from any thread (pool collector, drift monitor,
    training loop); the engine's windows, cooldowns and alert log must
    reconcile exactly — regression for the previously lock-free engine."""

    def test_concurrent_events_produce_exact_alert_ledger(self):
        import threading

        engine = AlertEngine(
            rules=[
                Rule(
                    name="every-step",
                    metric="run.value",
                    condition=above(0.0),
                    window=1,
                    cooldown=0,
                )
            ]
        )
        num_threads, events_per_thread = 4, 200
        fired_counts = []
        errors = []

        def drive():
            fired = 0
            try:
                for step in range(events_per_thread):
                    fired += len(
                        engine.observe_event("step", {"step": step, "value": 1.0})
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            fired_counts.append(fired)

        threads = [threading.Thread(target=drive) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        expected = num_threads * events_per_thread
        # Every observation fires the window-1 rule exactly once; a torn
        # window/cooldown update would break either count.
        assert sum(fired_counts) == expected
        assert len(engine.alerts) == expected
        assert engine.count() == expected

    def test_concurrent_span_observation(self):
        import threading

        engine = AlertEngine(
            rules=[
                Rule(
                    name="slow-span",
                    metric="span.encode",
                    condition=above(0.5),
                    window=1,
                    cooldown=0,
                )
            ]
        )

        class Span:
            name = "encode"
            duration = 1.0

        def drive():
            for _ in range(100):
                engine.observe_span(Span())

        threads = [threading.Thread(target=drive) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert engine.count() == 400
