"""``repro.obs.report --follow``: live polling over a growing run log.

Contract under test: follow() re-renders only when fresh events arrive,
survives a log that doesn't exist yet, leaves torn trailing lines for
the next poll (via tail_events), and returns the moment ``run_end``
shows up — so a follower attached before the run starts detaches by
itself when the run finishes.
"""

import io
import threading
import time

from repro import obs
from repro.obs.report import follow, main


def _follow_output(path, **kwargs):
    stream = io.StringIO()
    code = follow(path, interval=0.01, stream=stream, **kwargs)
    return code, stream.getvalue()


class TestFollow:
    def test_absent_log_polls_quietly_until_max_polls(self, tmp_path):
        code, out = _follow_output(str(tmp_path / "later.jsonl"), max_polls=3)
        assert code == 0 and out == ""

    def test_renders_once_events_arrive_and_exits_on_run_end(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with obs.RunLogger(path, config={}) as log:
            for step in (1, 2, 3):
                log.step(step, losses={"total": 1.0 / step})
        code, out = _follow_output(path)  # no max_polls: run_end ends it
        assert code == 0
        assert "loss curves:" in out
        # run_start + 3 steps + run_end land in one poll
        assert "--- following" in out and "5 event(s)" in out

    def test_json_mode_emits_series_summaries(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with obs.RunLogger(path, config={}) as log:
            log.step(1, losses={"total": 0.5})
        code, out = _follow_output(path, as_json=True)
        assert code == 0 and '"loss.run.total.final"' in out

    def test_follows_a_concurrent_writer_to_completion(self, tmp_path):
        """End-to-end shape of the real use: reader attached first, a
        writer thread streams steps, the follower exits at run_end."""
        path = str(tmp_path / "run.jsonl")

        def write():
            with obs.RunLogger(path, config={}) as log:
                for step in range(1, 6):
                    log.step(step, losses={"total": 1.0})
                    time.sleep(0.005)

        writer = threading.Thread(target=write)
        writer.start()
        try:
            code, out = _follow_output(path)
        finally:
            writer.join(timeout=10.0)
        assert code == 0
        assert "loss curves:" in out

    def test_cli_flag_dispatches_to_follow(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        with obs.RunLogger(path, config={}) as log:
            log.step(1, losses={"total": 0.5})
        code = main([str(path), "--follow", "--interval", "0.01"])
        assert code == 0
        assert "--- following" in capsys.readouterr().out
