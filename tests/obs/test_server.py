"""Telemetry HTTP server: endpoints, readiness, concurrency, overhead.

The live-plane contract: every endpoint serves a consistent view of the
session while trainer threads mutate it; ``/metrics`` output is never
torn (the format checker validates every concurrent scrape); ``/ready``
flips to 503 while a critical alert is fresh and recovers on its own;
handler threads stay bounded under a scrape storm; and a session with a
server attached but zero requests pays nothing on the instrumentation
fast path.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.metrics import validate_exposition
from repro.obs.server import (
    DEFAULT_MAX_HANDLER_THREADS,
    ReadinessCheck,
    TelemetryServer,
)
from repro.obs.tracing import span_ring_snapshot


def _get(url, timeout=10.0):
    """(status, body) for a GET; HTTP errors return their status too."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


@pytest.fixture()
def served_session():
    """A live session with alerts + server on an ephemeral port."""
    with obs.telemetry(alerts=True, serve_port=0) as session:
        yield session, session.server.url


class TestEndpoints:
    def test_metrics_exposition_and_content_type(self, served_session):
        session, base = served_session
        session.metrics.counter("hits", help="scrape me").inc(2, kind="a")
        with urllib.request.urlopen(base + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            body = response.read().decode("utf-8")
        assert 'hits_total{kind="a"} 2.0' in body
        assert validate_exposition(body) == []

    def test_health_reports_uptime_and_endpoints(self, served_session):
        _, base = served_session
        status, body = _get(base + "/health")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0.0
        assert "/metrics" in payload["endpoints"]

    def test_ready_lists_every_check(self, served_session):
        _, base = served_session
        status, body = _get(base + "/ready")
        payload = json.loads(body)
        assert status == 200 and payload["ready"] is True
        assert [check["name"] for check in payload["checks"]] == ["alerts"]

    def test_alerts_empty_then_carries_firings(self, served_session):
        session, base = served_session
        assert json.loads(_get(base + "/alerts")[1]) == {"alerts": []}
        for value in (1.0, 1.0, float("nan")):
            session.alerts.observe_value("losses.total", value)
        payload = json.loads(_get(base + "/alerts")[1])
        assert len(payload["alerts"]) == 1
        alert = payload["alerts"][0]
        assert alert["severity"] == "critical"
        assert isinstance(alert["created"], float)

    def test_trace_returns_recent_spans_oldest_first(self, served_session):
        session, base = served_session
        for name in ("first", "second"):
            with session.tracer.span(name):
                pass
        spans = json.loads(_get(base + "/trace")[1])["spans"]
        assert [span["name"] for span in spans][-2:] == ["first", "second"]
        assert all(span["duration"] is not None for span in spans)

    def test_profile_404_without_profiler(self, served_session):
        _, base = served_session
        status, body = _get(base + "/profile")
        assert status == 404 and "profiler" in body

    def test_profile_serves_collapsed_stacks_when_armed(self):
        with obs.telemetry(profile_hz=200, serve_port=0) as session:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                sum(i * i for i in range(20_000))
                if session.profiler.summary()["samples"]:
                    break
            status, body = _get(session.server.url + "/profile")
        assert status == 200
        line = body.strip().splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert ";" in stack and int(count) >= 1

    def test_unknown_path_is_404(self, served_session):
        _, base = served_session
        assert _get(base + "/nope")[0] == 404
        assert _get(base + "/")[0] == 404


class TestReadiness:
    def test_critical_alert_flips_503_and_recovers(self):
        with obs.telemetry(alerts=True) as session:
            server = TelemetryServer(
                session, port=0, alert_cooldown_seconds=0.4
            )
            server.start()
            try:
                assert _get(server.url + "/ready")[0] == 200
                session.alerts.observe_value("losses.x", float("nan"))
                status, body = _get(server.url + "/ready")
                assert status == 503
                assert json.loads(body)["ready"] is False
                time.sleep(0.5)  # cooldown elapses, no re-fire
                assert _get(server.url + "/ready")[0] == 200
            finally:
                server.stop()

    def test_custom_checks_participate(self):
        warm = {"value": False}
        with obs.telemetry() as session:
            server = TelemetryServer(
                session, port=0,
                readiness_checks=[
                    ReadinessCheck("model", lambda: warm["value"]),
                ],
            )
            server.start()
            try:
                status, body = _get(server.url + "/ready")
                assert status == 503
                assert json.loads(body)["checks"][0]["name"] == "model"
                warm["value"] = True
                assert _get(server.url + "/ready")[0] == 200
            finally:
                server.stop()

    def test_crashing_check_reads_not_ready(self):
        def boom():
            raise RuntimeError("probe exploded")

        with obs.telemetry() as session:
            server = TelemetryServer(
                session, port=0,
                readiness_checks=[ReadinessCheck("boom", boom)],
            )
            with server:
                status, body = _get(server.url + "/ready")
        assert status == 503
        assert "probe exploded" in json.loads(body)["checks"][0]["detail"]


class TestSpanRingLifecycle:
    def test_ring_enabled_only_while_server_runs(self):
        with obs.telemetry() as session:
            with session.tracer.span("before"):
                pass
            assert span_ring_snapshot() == []
            server = TelemetryServer(session, port=0)
            server.start()
            with session.tracer.span("during"):
                pass
            assert [s.name for s in span_ring_snapshot()] == ["during"]
            server.stop()
            assert span_ring_snapshot() == []

    def test_ring_is_bounded(self):
        with obs.telemetry() as session:
            server = TelemetryServer(session, port=0, trace_capacity=4)
            with server:
                for index in range(10):
                    with session.tracer.span(f"s{index}"):
                        pass
                names = [s.name for s in span_ring_snapshot()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_stop_is_idempotent(self):
        with obs.telemetry() as session:
            server = TelemetryServer(session, port=0)
            server.start()
            server.stop()
            server.stop()  # second stop must not double-release the ring
            assert span_ring_snapshot() == []


class TestConcurrentScrapes:
    def test_hammer_while_trainer_mutates_and_alerts_fire(self):
        """N scraper threads against a mutating session: every response
        parses clean (no torn exposition), nothing deadlocks, and the
        process thread count stays bounded."""
        scrapers = 6
        duration = 1.2
        errors = []
        torn = []
        stop = threading.Event()

        with obs.telemetry(alerts=True, serve_port=0) as session:
            base = session.server.url
            baseline_threads = threading.active_count()
            peak = {"threads": 0}

            def scrape(endpoint):
                while not stop.is_set():
                    try:
                        status, body = _get(base + endpoint, timeout=10.0)
                    except Exception as error:  # noqa: BLE001 - collect all
                        errors.append(repr(error))
                        return
                    if endpoint == "/metrics":
                        if status != 200:
                            errors.append(f"/metrics -> {status}")
                        problems = validate_exposition(body)
                        if problems:
                            torn.append(problems)
                    elif status not in (200, 503):
                        errors.append(f"{endpoint} -> {status}")
                    peak["threads"] = max(
                        peak["threads"], threading.active_count()
                    )

            threads = [
                threading.Thread(
                    target=scrape,
                    args=("/metrics" if i % 2 == 0 else "/ready",),
                    daemon=True,
                )
                for i in range(scrapers)
            ]
            for thread in threads:
                thread.start()

            deadline = time.time() + duration
            step = 0
            while time.time() < deadline:
                step += 1
                session.metrics.counter("train.steps").inc(phase="pretrain")
                session.metrics.timer("step.seconds").observe(
                    0.001 * (step % 7), worker=str(step % 3)
                )
                session.metrics.gauge("queue.depth").set(step % 11)
                with session.tracer.span("train.step", step=step):
                    pass
                if step % 50 == 0:  # periodic critical firings mid-scrape
                    session.alerts.observe_value("losses.x", float("nan"))
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "scraper deadlocked"

        assert not errors, errors[:5]
        assert not torn, torn[:2]
        # serve thread + bounded handlers + our scrapers; anything far
        # beyond that means handler threads are leaking unbounded.
        allowed = (
            baseline_threads + scrapers + DEFAULT_MAX_HANDLER_THREADS + 2
        )
        assert peak["threads"] <= allowed, (
            f"thread count peaked at {peak['threads']} (allowed {allowed})"
        )

    def test_scrape_sees_consistent_histogram_families(self, served_session):
        """A scrape racing histogram writes still passes the cumulative
        bucket check — per-metric locks make each family atomic."""
        session, base = served_session
        stop = threading.Event()

        def writer():
            value = 0
            while not stop.is_set():
                session.metrics.timer("lat").observe((value % 10) / 1000.0)
                value += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(30):
                _, body = _get(base + "/metrics")
                assert validate_exposition(body) == []
        finally:
            stop.set()
            thread.join(timeout=5.0)


class TestZeroRequestOverhead:
    def test_idle_server_adds_nothing_to_the_hot_path(self):
        """serve_port= with zero requests must not slow instrumentation:
        the span ring adds one module-global check per span *finish*,
        and nothing else changes on the traced path."""
        calls = 5_000

        def timed_loop():
            best = float("inf")
            for _ in range(5):
                started = time.perf_counter()
                for _ in range(calls):
                    with obs.trace("hot"):
                        pass
                best = min(best, time.perf_counter() - started)
            return best / calls

        with obs.telemetry() as session:  # noqa: F841 - session active
            plain = timed_loop()
        with obs.telemetry(serve_port=0):
            served = timed_loop()
        # Same order of magnitude: generous 3x + absolute floor to absorb
        # scheduler jitter on CI, while still catching an accidental
        # per-span lock or HTTP touch (10-100x).
        assert served < plain * 3 + 5e-6, (
            f"idle server inflates span cost {plain * 1e6:.2f}µs -> "
            f"{served * 1e6:.2f}µs"
        )

    def test_disabled_ring_is_one_global_check(self):
        assert span_ring_snapshot() == []  # off by default


class TestValidateCli:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        from repro.obs.server import main

        registry = obs.MetricsRegistry()
        registry.counter("ok").inc()
        path = tmp_path / "scrape.txt"
        path.write_text(registry.to_prometheus())
        assert main(["--validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        from repro.obs.server import main

        path = tmp_path / "torn.txt"
        path.write_text('x_bucket{le="1.0"} 5\nx_bucket{le="+Inf"} 3\nx_count 3\n')
        assert main(["--validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_validates_a_live_url(self, served_session):
        from repro.obs.server import main

        session, base = served_session
        session.metrics.counter("live").inc()
        assert main(["--validate", base + "/metrics"]) == 0
