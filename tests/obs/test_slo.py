"""SLO engine: objective math, burn rates, budgets, alert wiring, e2e.

Contract under test: span durations feed the named timer; windowed
good/total counts derive from cumulative bucket diffs with linear
interpolation inside the straddling bucket; burn is the min of the fast
and slow windows; breaches fire as ``slo.burn_rate.<name>`` through the
shared :class:`AlertEngine` (cooldown, severity, ``raise_on`` intact);
and the gauges land under bounded ``slo=`` labels.  The e2e pair pins
the acceptance behaviour: a destabilized-latency run exhausts its budget
and fires, a healthy run fires nothing.
"""

import time

import pytest

from repro import obs
from repro.obs.alerts import AlertEngine, AlertError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import Slo, SloTracker, _good_below, default_slos


def _slo(**overrides):
    base = dict(
        name="pb", timer_series="latency.pb", objective_ms=10.0,
        target_fraction=0.9, window=32, fast_window=8, span="predict_batch",
    )
    base.update(overrides)
    return Slo(**base)


class TestSloDeclaration:
    def test_rejects_bad_objective(self):
        with pytest.raises(ValueError):
            _slo(objective_ms=0.0)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            _slo(target_fraction=1.0)

    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError):
            _slo(window=4, fast_window=8)

    def test_compiles_to_alert_rule(self):
        rule = _slo(severity="critical").rule()
        assert rule.metric == "slo.burn_rate.pb"
        assert rule.severity == "critical"
        assert rule.cooldown == 32

    def test_default_slos_cover_the_inference_path(self):
        spans = {slo.span for slo in default_slos()}
        assert spans == {"predict_batch", "encode", "featurize"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SloTracker([_slo(), _slo()], MetricsRegistry())


class TestGoodBelow:
    def test_whole_buckets_count_fully(self):
        registry = MetricsRegistry()
        timer = registry.timer("t", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05):
            timer.observe(value)
        good = _good_below(timer, timer.value(), 0.01)
        assert good == pytest.approx(2.0)

    def test_straddling_bucket_interpolates(self):
        registry = MetricsRegistry()
        timer = registry.timer("t", buckets=(0.001, 0.01, 0.1))
        for _ in range(10):
            timer.observe(0.05)  # all in the (0.01, 0.1] bucket
        # objective midway through the bucket -> linear share of its count
        good = _good_below(timer, timer.value(), 0.055)
        assert good == pytest.approx(10 * (0.055 - 0.01) / (0.1 - 0.01))

    def test_empty_series_is_zero(self):
        registry = MetricsRegistry()
        timer = registry.timer("t", buckets=(0.001,))
        assert _good_below(timer, timer.value(), 0.01) == 0.0

    def test_objective_beyond_max_counts_overflow(self):
        registry = MetricsRegistry()
        timer = registry.timer("t", buckets=(0.001,))
        timer.observe(0.5)
        timer.observe(0.7)
        assert _good_below(timer, timer.value(), 1.0) == pytest.approx(2.0)


class TestTrackerMath:
    def test_healthy_observations_keep_budget_full(self):
        registry = MetricsRegistry()
        tracker = SloTracker([_slo()], registry)
        for _ in range(40):
            registry.timer("latency.pb").observe(0.001)
            tracker.evaluate(tracker.slos[0])
        assert registry.gauge("slo.burn_rate").value(slo="pb") == 0.0
        assert registry.gauge("slo.budget_remaining").value(slo="pb") == 1.0
        assert registry.gauge("slo.compliance").value(slo="pb") == 1.0

    def test_all_bad_burns_at_inverse_budget_rate(self):
        registry = MetricsRegistry()
        tracker = SloTracker([_slo()], registry)  # target 0.9 -> budget 10%
        for _ in range(20):
            registry.timer("latency.pb").observe(0.5)  # 50x the objective
            tracker.evaluate(tracker.slos[0])
        burn = registry.gauge("slo.burn_rate").value(slo="pb")
        assert burn == pytest.approx(10.0, rel=1e-6)
        assert registry.gauge("slo.budget_remaining").value(slo="pb") < 0.0

    def test_below_min_events_never_burns(self):
        registry = MetricsRegistry()
        tracker = SloTracker([_slo()], registry, min_events=8)
        for _ in range(5):
            registry.timer("latency.pb").observe(0.5)
            tracker.evaluate(tracker.slos[0])
        assert registry.gauge("slo.burn_rate").value(slo="pb") == 0.0
        assert registry.gauge("slo.budget_remaining").value(slo="pb") == 1.0

    def test_burn_is_min_of_fast_and_slow_windows(self):
        """Old badness outside the fast window must not alert: the fast
        window recovers first and the min() masks the stale slow burn."""
        registry = MetricsRegistry()
        slo = _slo(window=16, fast_window=4)
        tracker = SloTracker([slo], registry, min_events=4)
        for _ in range(10):  # bad burst...
            registry.timer("latency.pb").observe(0.5)
            tracker.evaluate(slo)
        burning = registry.gauge("slo.burn_rate").value(slo="pb")
        for _ in range(8):  # ...then recovery
            registry.timer("latency.pb").observe(0.0005)
            tracker.evaluate(slo)
        recovered = registry.gauge("slo.burn_rate").value(slo="pb")
        assert burning > 1.0
        assert recovered == 0.0  # fast window is clean again

    def test_status_rows_are_json_ready(self):
        registry = MetricsRegistry()
        tracker = SloTracker([_slo()], registry)
        rows = tracker.status()
        assert rows[0]["slo"] == "pb"
        assert rows[0]["objective_ms"] == 10.0


class TestAlertWiring:
    def test_burn_breach_fires_through_engine(self):
        registry = MetricsRegistry()
        engine = AlertEngine(rules=[])
        tracker = SloTracker([_slo()], registry, engine)
        fired = []
        for _ in range(20):
            registry.timer("latency.pb").observe(0.5)
            fired.extend(tracker.evaluate(tracker.slos[0]))
        assert fired, "sustained breach never fired"
        assert fired[0].rule == "slo_burn_pb"
        assert fired[0].severity == "critical"
        assert fired[0].series == "slo.burn_rate.pb"
        # cooldown = slow window: one firing, not one per evaluation
        assert len(fired) < 3

    def test_raise_on_escalation_works_unchanged(self):
        registry = MetricsRegistry()
        engine = AlertEngine(rules=[], raise_on={"critical"})
        tracker = SloTracker([_slo()], registry, engine)
        with pytest.raises(AlertError):
            for _ in range(20):
                registry.timer("latency.pb").observe(0.5)
                for alert in tracker.evaluate(tracker.slos[0]):
                    if alert.severity in engine.raise_on:
                        raise AlertError(alert)

    def test_tracker_without_engine_only_publishes_gauges(self):
        registry = MetricsRegistry()
        tracker = SloTracker([_slo()], registry, engine=None)
        for _ in range(20):
            registry.timer("latency.pb").observe(0.5)
            assert tracker.evaluate(tracker.slos[0]) == []
        assert registry.gauge("slo.burn_rate").value(slo="pb") > 1.0


class TestEndToEnd:
    def test_destabilized_latency_exhausts_budget_and_fires(self):
        """Injected slow predict_batch spans must drain the error budget
        and fire a burn-rate alert through the session's AlertEngine."""
        slos = [Slo("predict", timer_series="latency.predict",
                    span="predict_batch", objective_ms=1.0,
                    target_fraction=0.95, window=32, fast_window=8)]
        with obs.telemetry(alerts=True, slos=slos) as session:
            for _ in range(12):
                with obs.trace("predict_batch"):
                    time.sleep(0.003)  # 3x the objective, every call
        fired = [a for a in session.alerts.alerts
                 if a.rule == "slo_burn_predict"]
        assert fired, "destabilized run never fired the SLO alert"
        assert session.metrics.gauge("slo.budget_remaining").value(
            slo="predict"
        ) < 0.0
        assert session.metrics.counter("alerts.fired").value(
            severity="critical"
        ) >= 1.0

    def test_healthy_run_fires_zero_slo_alerts(self):
        slos = [Slo("predict", timer_series="latency.predict",
                    span="predict_batch", objective_ms=250.0,
                    target_fraction=0.95, window=32, fast_window=8)]
        with obs.telemetry(alerts=True, slos=slos) as session:
            for _ in range(40):
                with obs.trace("predict_batch"):
                    pass
        assert [a for a in session.alerts.alerts
                if a.rule.startswith("slo_burn")] == []
        assert session.metrics.gauge("slo.budget_remaining").value(
            slo="predict"
        ) == 1.0

    def test_slo_gauges_visible_on_metrics_endpoint(self):
        import urllib.request

        with obs.telemetry(alerts=True, slos=True, serve_port=0) as session:
            for _ in range(10):
                with obs.trace("predict_batch"):
                    pass
            with urllib.request.urlopen(
                session.server.url + "/metrics"
            ) as response:
                body = response.read().decode("utf-8")
        assert 'slo_budget_remaining{slo="predict_batch"}' in body
        assert 'slo_burn_rate{slo="predict_batch"}' in body

    def test_alert_event_lands_in_run_log(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        slos = [Slo("predict", timer_series="latency.predict",
                    span="predict_batch", objective_ms=1.0,
                    target_fraction=0.95, window=32, fast_window=8)]
        with obs.telemetry(run_log=path, alerts=True, slos=slos):
            for _ in range(12):
                with obs.trace("predict_batch"):
                    time.sleep(0.003)
        events = obs.read_run_log(path)
        alerts = [e for e in events if e.get("event") == "alert"]
        assert any(e.get("rule") == "slo_burn_predict" for e in alerts)
