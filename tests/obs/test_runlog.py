"""Run logging: JSONL round-trip and the telemetry session lifecycle."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs import MetricsRegistry, RunLogger, read_run_log, write_json


class TestRunLogger:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLogger(path, config={"lr": 0.001}, seeds={"trainer": 7}) as log:
            log.step(1, losses={"crf": 1.5}, grad_norm=2.0)
            log.epoch(0, loss=1.4)
            log.eval(val_accuracy=0.5)
        events = read_run_log(path)
        kinds = [e["event"] for e in events]
        assert kinds == ["run_start", "step", "epoch", "eval", "run_end"]
        start, step, epoch, evaluation, end = events
        assert start["config"] == {"lr": 0.001}
        assert start["seeds"] == {"trainer": 7}
        assert start["run_id"] == end["run_id"]
        assert step["losses"] == {"crf": 1.5}
        assert step["grad_norm"] == 2.0
        assert epoch["loss"] == 1.4
        assert evaluation["val_accuracy"] == 0.5
        assert end["status"] == "ok"
        assert end["total_seconds"] >= 0.0

    def test_every_record_carries_clock_fields(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLogger(path) as log:
            log.event("custom", value=1)
        for record in read_run_log(path):
            assert "ts" in record and "elapsed" in record

    def test_elapsed_is_monotone(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLogger(path) as log:
            for i in range(5):
                log.step(i)
        elapsed = [e["elapsed"] for e in read_run_log(path)]
        assert elapsed == sorted(elapsed)

    def test_numpy_values_serialize(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLogger(path) as log:
            log.event(
                "custom",
                scalar=np.float64(1.5),
                integer=np.int64(3),
                array=np.arange(3),
            )
        record = read_run_log(path)[1]
        assert record["scalar"] == 1.5
        assert record["integer"] == 3
        assert record["array"] == [0, 1, 2]

    def test_exception_marks_run_as_error(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with pytest.raises(ValueError):
            with RunLogger(path):
                raise ValueError("boom")
        end = read_run_log(path)[-1]
        assert end["event"] == "run_end"
        assert end["status"] == "error"
        assert end["error"] == "ValueError"

    def test_run_end_is_idempotent(self, tmp_path):
        log = RunLogger(str(tmp_path / "run.jsonl"))
        log.run_start()
        log.run_end()
        log.run_end()
        log.close()
        events = read_run_log(str(tmp_path / "run.jsonl"))
        assert [e["event"] for e in events] == ["run_start", "run_end"]

    def test_metric_snapshot_event(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        path = str(tmp_path / "run.jsonl")
        with RunLogger(path) as log:
            log.metric_snapshot(registry)
        snapshot = read_run_log(path)[1]
        assert snapshot["event"] == "metric_snapshot"
        assert snapshot["metrics"]["cache.hits"]["series"][0]["value"] == 3.0


class TestWriteJson:
    def test_numpy_safe_document(self, tmp_path):
        path = str(tmp_path / "report.json")
        write_json(path, {"speedup": np.float64(2.5), "sizes": np.arange(2)})
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload == {"speedup": 2.5, "sizes": [0, 1]}


class TestTelemetrySession:
    def test_no_session_installed_by_default(self):
        assert obs.get_telemetry() is None

    def test_use_telemetry_installs_and_restores(self):
        session = obs.Telemetry()
        with obs.use_telemetry(session):
            assert obs.get_telemetry() is session
        assert obs.get_telemetry() is None

    def test_telemetry_writes_full_lifecycle(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with obs.telemetry(
            run_log=path, config={"epochs": 2}, seeds={"trainer": 0}
        ) as tel:
            with obs.trace("work", batch=2):
                pass
            tel.metrics.counter("items").inc(5)
            obs.emit("custom", value=1)
        events = read_run_log(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "span" in kinds and "custom" in kinds and "metric_snapshot" in kinds
        span = next(e for e in events if e["event"] == "span")
        assert span["name"] == "work"
        assert span["attributes"] == {"batch": 2}
        snapshot = next(e for e in events if e["event"] == "metric_snapshot")
        assert snapshot["metrics"]["items"]["series"][0]["value"] == 5.0

    def test_telemetry_error_path(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with pytest.raises(RuntimeError):
            with obs.telemetry(run_log=path):
                raise RuntimeError("boom")
        end = read_run_log(path)[-1]
        assert end["status"] == "error"
        assert end["error"] == "RuntimeError"
        assert obs.get_telemetry() is None

    def test_telemetry_without_run_log_collects_in_memory(self):
        with obs.telemetry() as tel:
            with obs.trace("stage"):
                pass
            tel.metrics.counter("c").inc()
        summary = tel.summary()
        assert summary["spans"]["stage"]["calls"] == 1
        assert summary["metrics"]["c"]["series"][0]["value"] == 1.0

    def test_traced_decorator_resolves_session_at_call_time(self):
        calls = []

        @obs.traced("unit.work")
        def work():
            calls.append(obs.get_telemetry())
            return 42

        assert work() == 42  # no session: plain call
        with obs.telemetry() as tel:
            assert work() == 42
        assert tel.tracer.calls_by_name() == {"unit.work": 1}
        assert calls[0] is None and calls[1] is tel


class TestTailEvents:
    def test_missing_file_reads_as_no_events(self, tmp_path):
        events, offset = obs.tail_events(str(tmp_path / "nope.jsonl"))
        assert events == [] and offset == 0

    def test_incremental_reads_resume_from_offset(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event": "a"}\n')
        events, offset = obs.tail_events(path)
        assert [e["event"] for e in events] == ["a"]
        with open(path, "a") as handle:
            handle.write('{"event": "b"}\n{"event": "c"}\n')
        events, offset = obs.tail_events(path, offset)
        assert [e["event"] for e in events] == ["b", "c"]
        assert obs.tail_events(path, offset) == ([], offset)

    def test_partial_trailing_line_waits_for_its_newline(self, tmp_path):
        """A writer caught mid-record must not poison the poll: the torn
        bytes stay unconsumed until the newline lands."""
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('{"event": "a"}\n{"event": "b", "x"')
        events, offset = obs.tail_events(path)
        assert [e["event"] for e in events] == ["a"]
        with open(path, "a") as handle:
            handle.write(': 1}\n')
        events, offset = obs.tail_events(path, offset)
        assert events == [{"event": "b", "x": 1}]

    def test_matches_read_run_log_on_a_finished_log(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with obs.RunLogger(path, config={"k": 1}) as log:
            log.step(1, losses={"total": 0.5})
        assert obs.tail_events(path)[0] == read_run_log(path)
