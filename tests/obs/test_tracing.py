"""Span tracing: nesting, ordering, attributes, and exception unwind."""

import pytest

from repro import obs
from repro.eval import StageProfile
from repro.obs import Tracer, current_span


class TestNesting:
    def test_parent_links_and_finish_order(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None
        # Finish order is inner-before-outer.
        assert [span.name for span in tracer.finished()] == [
            "inner", "sibling", "outer",
        ]

    def test_span_ids_are_unique_across_tracers(self):
        first, second = Tracer(), Tracer()
        with first.span("a") as a:
            with second.span("b") as b:
                assert b.span_id != a.span_id
                # Nesting crosses tracers through the shared context var.
                assert b.parent_id == a.span_id

    def test_current_span_tracks_innermost(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_durations_are_measured_and_inclusive(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished()
        assert outer.duration >= inner.duration >= 0.0


class TestAttributesAndStatus:
    def test_attributes_from_kwargs_and_set_attribute(self):
        tracer = Tracer()
        with tracer.span("s", batch=4) as span:
            span.set_attribute("waste", 0.25)
        record = tracer.finished()[0].to_dict()
        assert record["attributes"] == {"batch": 4, "waste": 0.25}
        assert record["status"] == "ok"
        assert "error" not in record

    def test_exception_unwinds_with_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        inner, outer = tracer.finished()
        assert inner.status == outer.status == "error"
        assert inner.error == outer.error == "RuntimeError"
        assert inner.duration is not None and outer.duration is not None
        # The context-local stack fully unwound.
        assert current_span() is None

    def test_traced_decorator(self):
        tracer = Tracer()

        @tracer.traced()
        def work(x):
            return x + 1

        assert work(1) == 2
        (span,) = tracer.finished()
        assert span.name.endswith("work")


class TestAggregation:
    def test_breakdown_matches_stage_profile_shape(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("encode"):
                pass
        with tracer.span("decode"):
            pass
        breakdown = tracer.breakdown()
        assert set(breakdown) == {"encode", "decode"}
        assert breakdown["encode"]["calls"] == 3
        assert breakdown["decode"]["calls"] == 1
        assert sum(entry["fraction"] for entry in breakdown.values()) == (
            pytest.approx(1.0)
        )

    def test_reset_forgets_finished_spans(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.finished() == []
        assert tracer.breakdown() == {}

    def test_on_finish_streams_each_span(self):
        seen = []
        tracer = Tracer(on_finish=seen.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [span.name for span in seen] == ["b", "a"]


class TestStageProfileShim:
    def test_delegates_to_tracer(self):
        profile = StageProfile()
        with profile.stage("encode"):
            pass
        with profile.stage("encode"):
            pass
        assert profile.calls == {"encode": 2}
        assert profile.seconds["encode"] >= 0.0
        assert profile.total_seconds == pytest.approx(
            sum(profile.seconds.values())
        )
        assert profile.breakdown()["encode"]["calls"] == 2

    def test_nests_under_session_spans(self):
        profile = StageProfile()
        session = obs.Telemetry()
        with obs.use_telemetry(session):
            with obs.trace("predict_batch"):
                with profile.stage("encode"):
                    pass
        (outer,) = session.tracer.finished()
        (stage,) = profile._tracer.finished()
        assert stage.parent_id == outer.span_id
