"""Metrics registry: series semantics, export, and thread safety."""

import io
import json
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("cache.hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("requests")
        counter.inc(path="hit")
        counter.inc(path="hit")
        counter.inc(path="miss")
        assert counter.value(path="hit") == 2.0
        assert counter.value(path="miss") == 1.0
        assert counter.value() == 0.0  # unlabeled series untouched

    def test_label_order_is_canonical(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)

    def test_snapshot_shape(self):
        counter = Counter("c", help="docs")
        counter.inc(kind="x")
        dump = counter.snapshot()
        assert dump["name"] == "c"
        assert dump["kind"] == "counter"
        assert dump["help"] == "docs"
        assert dump["series"] == [{"labels": {"kind": "x"}, "value": 1.0}]


class TestGauge:
    def test_set_is_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(7.0)
        assert gauge.value() == 7.0

    def test_inc_may_go_negative(self):
        gauge = Gauge("g")
        gauge.inc(-2.0)
        assert gauge.value() == -2.0


class TestHistogram:
    def test_bucketing_and_stats(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        dump = hist.value()
        assert dump["count"] == 4
        assert dump["sum"] == pytest.approx(105.0)
        assert dump["min"] == 0.5
        assert dump["max"] == 100.0
        assert dump["buckets"] == {"1.0": 1, "2.0": 1, "4.0": 1, "+Inf": 1}

    def test_boundary_is_inclusive(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.value()["buckets"]["1.0"] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_never_written_series_is_zeroed(self):
        dump = Histogram("h", buckets=(1.0,)).value()
        assert dump["count"] == 0
        assert dump["min"] == 0.0


class TestHistogramPercentiles:
    def test_interpolates_within_a_bucket(self):
        hist = Histogram("h", buckets=(10.0, 20.0, 30.0))
        for value in (12.0, 14.0, 16.0, 18.0):
            hist.observe(value)
        # all mass in the (10, 20] bucket: p50 lands mid-bucket
        assert hist.percentile(50) == pytest.approx(15.0)
        assert 10.0 < hist.percentile(95) <= 20.0

    def test_first_bucket_uses_observed_min_as_lower_edge(self):
        hist = Histogram("h", buckets=(100.0,))
        hist.observe(40.0)
        hist.observe(60.0)
        # naive interpolation from 0 would say 50 at p50 is below min
        assert hist.percentile(0) >= 40.0
        assert hist.percentile(100) == pytest.approx(60.0)

    def test_overflow_bucket_is_capped_at_observed_max(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(50.0)
        hist.observe(70.0)
        assert hist.percentile(99) <= 70.0

    def test_estimates_are_monotone_and_clamped(self):
        hist = Histogram("h", buckets=(0.01, 0.1, 1.0, 10.0))
        for value in (0.005, 0.05, 0.05, 0.5, 0.5, 0.5, 5.0, 20.0):
            hist.observe(value)
        estimates = [hist.percentile(q) for q in (1, 25, 50, 75, 95, 99)]
        assert estimates == sorted(estimates)
        assert all(0.005 <= e <= 20.0 for e in estimates)

    def test_empty_series_and_bad_q(self):
        hist = Histogram("h")
        assert hist.percentile(95) == 0.0
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_labeled_series_are_independent(self):
        hist = Histogram("h", buckets=(10.0,))
        hist.observe(2.0, stage="a")
        hist.observe(8.0, stage="b")
        assert hist.percentile(50, stage="a") < hist.percentile(50, stage="b")

    def test_snapshot_carries_percentile_keys(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.5)
        dump = hist.value()
        assert {"p50", "p95", "p99"} <= set(dump)
        assert 1.0 < dump["p50"] <= 1.5  # capped at the observed max


class TestTimer:
    def test_time_context_observes_once(self):
        timer = Timer("t")
        with timer.time(stage="encode"):
            pass
        dump = timer.value(stage="encode")
        assert dump["count"] == 1
        assert dump["sum"] >= 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.timer("t") is registry.timer("t")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_timer_is_not_a_plain_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        with pytest.raises(ValueError):
            registry.timer("h")

    def test_names_contains_iter(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]
        assert "a" in registry
        assert "zz" not in registry
        assert {m.name for m in registry} == {"a", "b"}

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        snap = registry.snapshot()
        assert snap["c"]["series"][0]["value"] == 5.0
        registry.reset()
        assert registry.snapshot()["c"]["series"] == []
        assert "c" in registry  # names survive a reset

    def test_to_jsonl_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, kind="x")
        registry.gauge("g").set(1.5)
        buffer = io.StringIO()
        lines = registry.to_jsonl(buffer)
        records = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines == len(records) == 2
        by_name = {r["name"]: r for r in records}
        assert by_name["c"] == {
            "name": "c", "kind": "counter", "labels": {"kind": "x"}, "value": 2.0,
        }
        assert by_name["g"]["value"] == 1.5

    def test_to_jsonl_path(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.jsonl"
        assert registry.to_jsonl(str(path)) == 1
        assert json.loads(path.read_text())["value"] == 1.0

    def test_default_latency_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        threads, increments = 8, 2000
        barrier = threading.Barrier(threads)

        def work(worker):
            counter = registry.counter("hits")
            barrier.wait()
            for _ in range(increments):
                counter.inc()
                counter.inc(worker=worker % 2)

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        counter = registry.counter("hits")
        assert counter.value() == threads * increments
        assert (
            counter.value(worker=0) + counter.value(worker=1)
            == threads * increments
        )

    def test_concurrent_histogram_observes_are_exact(self):
        hist = Histogram("h", buckets=(0.5,))
        threads, observations = 8, 1000
        barrier = threading.Barrier(threads)

        def work():
            barrier.wait()
            for _ in range(observations):
                hist.observe(0.25)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        dump = hist.value()
        assert dump["count"] == threads * observations
        assert dump["buckets"]["0.5"] == threads * observations


def _exposition_registry() -> MetricsRegistry:
    """Deterministic registry the Prometheus golden file pins."""
    registry = MetricsRegistry()
    counter = registry.counter("cache.hits", help="feature cache hits")
    counter.inc(3, stage="encode")
    counter.inc(1, stage="decode")
    registry.gauge("queue.depth").set(4)
    hist = registry.histogram("batch.size", buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.5, 1.5, 4.0, 9.0):
        hist.observe(value)
    timer = registry.timer("step.seconds", buckets=(0.1, 1.0))
    timer.observe(0.05, worker="0")
    timer.observe(0.5, worker="0")
    # Adversarial values the exposition format must escape: backslashes,
    # double quotes and newlines in label values; backslash/newline in
    # help text.
    hostile = registry.counter(
        "hostile.labels", help="weird\\path help\nsecond line"
    )
    hostile.inc(2, path='C:\\dir\\"quoted"\nnext')
    return registry


class TestPrometheusExport:
    GOLDEN = "tests/obs/data/prometheus_export.txt"

    def test_matches_golden_file(self):
        import pathlib

        golden = pathlib.Path(self.GOLDEN)
        assert golden.exists(), (
            f"golden file missing; regenerate with:\n  PYTHONPATH=src python"
            f" -c \"from tests.obs.test_metrics import _exposition_registry;"
            f" print(_exposition_registry().to_prometheus(), end='')\""
            f" > {self.GOLDEN}"
        )
        assert _exposition_registry().to_prometheus() == golden.read_text()

    def test_counters_get_total_suffix_and_sorted_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2, zone="b", area="a")
        text = registry.to_prometheus()
        assert 'hits_total{area="a",zone="b"} 2.0' in text

    def test_names_are_sanitised(self):
        registry = MetricsRegistry()
        registry.gauge("cache.hit-rate").set(0.5)
        assert "cache_hit_rate 0.5" in registry.to_prometheus()

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(5.0)
        text = registry.to_prometheus()
        assert 'sizes_bucket{le="1.0"} 1' in text
        assert 'sizes_bucket{le="2.0"} 2' in text
        assert 'sizes_bucket{le="+Inf"} 3' in text
        assert "sizes_count 3" in text

    def test_timer_exports_as_histogram(self):
        registry = MetricsRegistry()
        registry.timer("lat", buckets=(0.1,)).observe(0.05)
        text = registry.to_prometheus()
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.1"} 1' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd").inc(1, path='a"b\\c')
        assert 'path="a\\"b\\\\c"' in registry.to_prometheus()

    def test_label_newlines_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd").inc(1, path="line1\nline2")
        text = registry.to_prometheus()
        assert 'path="line1\\nline2"' in text
        # The exposition must stay one sample per physical line.
        assert all(
            line.startswith(("#", "odd_total")) for line in text.splitlines()
        )

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("doc", help="has \\slash\nand newline").inc()
        assert "# HELP doc has \\\\slash\\nand newline" in registry.to_prometheus()

    def test_help_backfills_on_reregistration(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c", help="added later").inc()
        assert "# HELP c added later" in registry.to_prometheus()

    def test_empty_registry_is_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestValidateExposition:
    def test_own_exposition_is_valid(self):
        assert _exposition_registry().validate_exposition() == []

    def test_module_function_accepts_raw_text(self):
        from repro.obs.metrics import validate_exposition

        text = _exposition_registry().to_prometheus()
        assert validate_exposition(text) == []

    def test_catches_torn_sample_line(self):
        from repro.obs.metrics import validate_exposition

        errors = validate_exposition('x_total{label="v"} ')
        assert errors and "unparseable" in errors[0]

    def test_catches_unescaped_label_newline(self):
        from repro.obs.metrics import validate_exposition

        errors = validate_exposition('x_total{label="a\nb"} 1\n')
        assert errors

    def test_catches_unknown_type(self):
        from repro.obs.metrics import validate_exposition

        errors = validate_exposition("# TYPE x flamegraph\nx 1\n")
        assert any("unknown TYPE" in error for error in errors)

    def test_catches_non_cumulative_buckets(self):
        from repro.obs.metrics import validate_exposition

        text = (
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="2.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
        )
        errors = validate_exposition(text)
        assert any("not cumulative" in error for error in errors)

    def test_catches_missing_inf_bucket(self):
        from repro.obs.metrics import validate_exposition

        errors = validate_exposition('h_bucket{le="1.0"} 2\nh_count 2\n')
        assert any("+Inf" in error for error in errors)

    def test_catches_count_mismatch(self):
        from repro.obs.metrics import validate_exposition

        text = 'h_bucket{le="+Inf"} 2\nh_count 5\n'
        errors = validate_exposition(text)
        assert any("_count" in error for error in errors)


class TestMergeSnapshot:
    def test_counters_add_and_gain_extra_labels(self):
        parent = MetricsRegistry()
        parent.counter("hits").inc(5, worker="0")
        child = MetricsRegistry()
        child.counter("hits").inc(3)
        merged = parent.merge_snapshot(
            child.snapshot(), extra_labels={"worker": "1"}
        )
        assert merged == 1
        assert parent.counter("hits").value(worker="0") == 5
        assert parent.counter("hits").value(worker="1") == 3

    def test_gauge_last_write_wins(self):
        parent = MetricsRegistry()
        child = MetricsRegistry()
        child.gauge("depth").set(7)
        parent.merge_snapshot(child.snapshot(), extra_labels={"worker": "2"})
        assert parent.gauge("depth").value(worker="2") == 7

    def test_histogram_merge_is_bucket_exact(self):
        child = MetricsRegistry()
        hist = child.histogram("sizes", buckets=(1.0, 5.0))
        for value in (0.5, 3.0, 10.0):
            hist.observe(value)
        parent = MetricsRegistry()
        parent.merge_snapshot(child.snapshot(), extra_labels={"worker": "0"})
        merged = parent.histogram("sizes", buckets=(1.0, 5.0)).value(worker="0")
        assert merged["count"] == 3
        assert merged["buckets"] == {"1.0": 1, "5.0": 1, "+Inf": 1}
        assert merged["min"] == 0.5 and merged["max"] == 10.0

    def test_timer_merges_as_timer_not_histogram(self):
        child = MetricsRegistry()
        child.timer("step.seconds").observe(0.2)
        parent = MetricsRegistry()
        parent.merge_snapshot(child.snapshot())
        assert parent.timer("step.seconds").value()["count"] == 1
        with pytest.raises(ValueError):
            parent.histogram("step.seconds")

    def test_bucket_boundary_mismatch_rejected(self):
        target = Histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            target.merge_value(
                {"count": 1, "sum": 0.5, "min": 0.5, "max": 0.5,
                 "buckets": {"1.0": 1, "+Inf": 0}}
            )

    def test_merge_twice_accumulates(self):
        child = MetricsRegistry()
        child.counter("hits").inc(2)
        parent = MetricsRegistry()
        snapshot = child.snapshot()
        parent.merge_snapshot(snapshot, extra_labels={"worker": "0"})
        parent.merge_snapshot(snapshot, extra_labels={"worker": "1"})
        assert parent.counter("hits").value(worker="0") == 2
        assert parent.counter("hits").value(worker="1") == 2
