"""Unit tests for drift profiles, PSI/KL scoring, and the live monitor.

Covers the ISSUE edge cases directly: empty references (``no-reference``),
empty candidates (``no-data``), tiny samples (``low-data``), and fully
disjoint distributions (large but finite PSI via proportion smoothing).
"""

import json
import math

import pytest

from repro import obs
from repro.obs.drift import (
    DEFAULT_MIN_SAMPLES,
    DriftMonitor,
    FeatureProfile,
    ReferenceProfile,
    check,
    document_observations,
    kl_divergence,
    ner_observations,
    psi,
)


def _hist(values, edges=(1, 2, 4, 8)):
    return FeatureProfile.histogram(edges, values)


class TestFeatureProfile:
    def test_histogram_binning_with_overflow(self):
        profile = _hist([0.5, 1.0, 3.0, 100.0])
        # bins: <=1, <=2, <=4, <=8, overflow
        assert profile.counts == [2.0, 0.0, 1.0, 0.0, 1.0]
        assert profile.total == 4.0

    def test_non_finite_values_are_skipped(self):
        profile = _hist([1.0, float("nan"), float("inf")])
        assert profile.total == 1.0

    def test_categorical_counts(self):
        profile = FeatureProfile.categorical(["a", "b", "a"])
        assert profile.categories == {"a": 2.0, "b": 1.0}

    def test_categorical_alignment_unions_keys(self):
        left = FeatureProfile.categorical(["a", "a"])
        right = FeatureProfile.categorical(["b"])
        p, names = left.proportions(align_with=right)
        assert names == ["a", "b"]
        assert len(p) == 2 and p[0] > p[1]

    def test_empty_profile_proportions(self):
        p, names = _hist([]).proportions()
        assert p == [] and names  # bin names survive, no proportions

    def test_roundtrip(self):
        for profile in (_hist([1.0, 5.0]), FeatureProfile.categorical(["x"])):
            clone = FeatureProfile.from_dict(profile.to_dict())
            assert clone.to_dict() == profile.to_dict()


class TestScores:
    def test_identical_distributions_score_zero(self):
        a, b = _hist([1, 2, 3, 5] * 10), _hist([1, 2, 3, 5] * 10)
        assert psi(a, b) == pytest.approx(0.0, abs=1e-9)
        assert kl_divergence(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_disjoint_distributions_are_large_but_finite(self):
        score = psi(_hist([0.5] * 50), _hist([100.0] * 50))
        assert score is not None and math.isfinite(score)
        assert score > 1.0

    def test_empty_side_scores_none(self):
        assert psi(_hist([]), _hist([1.0])) is None
        assert psi(_hist([1.0]), _hist([])) is None

    def test_psi_is_symmetric_kl_is_not(self):
        a, b = _hist([1] * 45 + [5] * 5), _hist([1] * 25 + [5] * 25)
        assert psi(a, b) == pytest.approx(psi(b, a))
        assert kl_divergence(a, b) != pytest.approx(kl_divergence(b, a))


class TestCheck:
    def test_statuses_cover_every_degenerate_case(self):
        reference = ReferenceProfile({
            "empty_ref": _hist([]),
            "no_data": _hist([1.0] * 30),
            "tiny": _hist([1.0] * 5),
            "stable": _hist([1, 2, 3, 5] * 10),
            "shifted": _hist([1.0] * 40),
        })
        report = check(reference, {
            "no_data": [],
            "tiny": [1.0] * 5,
            "stable": [1, 2, 3, 5] * 10,
            "shifted": [100.0] * 40,
            "unknown_feature": [1.0],  # absent from reference: ignored
        })
        statuses = {k: v["status"] for k, v in report.scores.items()}
        assert statuses == {
            "empty_ref": "no-reference",
            "no_data": "no-data",
            "tiny": "low-data",
            "stable": "ok",
            "shifted": "drifted",
        }
        assert "unknown_feature" not in report.scores
        assert report.drifted == ["shifted"]
        assert report.ok is False

    def test_low_data_never_flags_even_when_psi_is_huge(self):
        reference = ReferenceProfile({"f": _hist([1.0] * 5)})
        report = check(reference, {"f": [100.0] * 5})
        entry = report.scores["f"]
        assert entry["status"] == "low-data"
        assert entry["psi"] > 0.25  # the raw score is still reported
        assert report.ok is True

    def test_min_samples_is_tunable(self):
        reference = ReferenceProfile({"f": _hist([1.0] * 5)})
        report = check(reference, {"f": [100.0] * 5}, min_samples=2)
        assert report.scores["f"]["status"] == "drifted"

    def test_moderate_band(self):
        reference = ReferenceProfile({"f": _hist([1] * 50 + [3] * 50)})
        report = check(reference, {"f": [1] * 70 + [3] * 30})
        entry = report.scores["f"]
        assert 0.1 < entry["psi"] <= 0.25
        assert entry["status"] == "moderate"

    def test_accepts_a_profile_as_candidate(self):
        reference = ReferenceProfile({"f": _hist([1, 2, 4] * 20)})
        candidate = ReferenceProfile({"f": _hist([1, 2, 4] * 20)})
        report = check(reference, candidate)
        assert report.scores["f"]["status"] == "ok"

    def test_to_fields_shape(self):
        reference = ReferenceProfile({"f": _hist([1.0] * 30)})
        fields = check(reference, {"f": [1.0] * 30}).to_fields()
        assert fields["ok"] is True and fields["drifted"] == []
        assert json.dumps(fields)  # event payload must be serializable


class TestReferenceProfile:
    def test_template_builds_empty_tracked_features(self):
        template = ReferenceProfile.template(
            ("sentence_length", "block_label", "crf_confidence")
        )
        assert template.names() == [
            "block_label", "crf_confidence", "sentence_length",
        ]
        assert template.features["block_label"].kind == "categorical"
        assert template.features["sentence_length"].kind == "histogram"
        assert all(p.total == 0 for p in template.features.values())

    def test_save_load_roundtrip(self, tmp_path):
        reference = ReferenceProfile(
            {"f": _hist([1, 5]), "labels": FeatureProfile.categorical(["x"])},
            meta={"source": "test"},
        )
        path = str(tmp_path / "profile.json")
        reference.save(path)
        loaded = ReferenceProfile.load(path)
        assert loaded.to_dict() == reference.to_dict()
        assert "f" in loaded and len(loaded) == 2


class TestObservationExtraction:
    def test_ner_observations(self):
        class Example:
            def __init__(self, n):
                self.words = ["w"] * n

        observations = ner_observations(
            [Example(3), Example(5)],
            predictions=[["B-NAME", "I-NAME", "O"]],
            confidences=[0.9, 0.8],
        )
        assert observations["word_count"] == [3, 5]
        assert observations["ner_label"] == ["NAME", "NAME", "O"]
        assert observations["ner_confidence"] == [0.9, 0.8]

    def test_document_observations_strip_iob_prefixes(self):
        observations = document_observations(
            [], predictions=[["B-edu", "I-edu", "O"]]
        )
        assert observations["block_label"] == ["edu", "edu", "O"]


class TestDriftMonitor:
    def _monitor(self, **kwargs):
        reference = ReferenceProfile({"f": _hist([1, 2, 4] * 20)})
        kwargs.setdefault("window", 64)
        kwargs.setdefault("check_every", 8)
        return DriftMonitor(reference, **kwargs)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            self._monitor(window=0)
        with pytest.raises(ValueError):
            self._monitor(check_every=0)

    def test_wants_only_reference_features(self):
        monitor = self._monitor()
        assert monitor.wants("f") and not monitor.wants("other")

    def test_check_cadence(self):
        monitor = self._monitor(check_every=8)
        assert monitor.observe({"f": [1.0] * 7}) is None
        report = monitor.observe({"f": [1.0] * 1})
        assert report is not None and monitor.checks == 1
        assert monitor.last_report is report

    def test_unknown_features_do_not_advance_the_cadence(self):
        monitor = self._monitor(check_every=4)
        assert monitor.observe({"other": [1.0] * 100}) is None
        assert monitor.checks == 0

    def test_window_rolls(self):
        monitor = self._monitor(window=4, check_every=10**9)
        monitor.observe({"f": [1, 1, 1, 1, 9, 9, 9, 9]})
        assert monitor.current_observations()["f"] == [9, 9, 9, 9]

    def test_current_profile_captures_the_window(self):
        monitor = self._monitor(check_every=10**9)
        monitor.observe({"f": [1, 2, 4] * 20})
        captured = monitor.current_profile()
        assert captured.features["f"].total == 60
        # captured window scores clean against itself
        assert check(captured, {"f": [1, 2, 4] * 20}).ok

    def test_publishes_event_counter_and_gauges(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        monitor = self._monitor(check_every=8)
        with obs.telemetry(run_log=path, drift=monitor) as tel:
            monitor.observe({"f": [100.0] * 40})  # disjoint: drifts
            checks = tel.metrics.counter("drift.checks").value()
            flags = tel.metrics.counter("drift.flags").value()
            score = tel.metrics.gauge("drift.psi").value(feature="f")
        assert checks == 1 and flags >= 1
        assert score > 0.25
        drift_events = [
            e for e in obs.read_run_log(path) if e["event"] == "drift"
        ]
        assert drift_events and drift_events[-1]["drifted"] == ["f"]

    def test_run_check_outside_session_is_safe(self):
        monitor = self._monitor()
        monitor.observe({"f": [1.0] * 40})
        report = monitor.run_check()  # no session: publish is a no-op
        assert report.scores["f"]["status"] in ("ok", "moderate", "drifted")
