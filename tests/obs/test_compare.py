"""Unit tests for the run-log differ and regression gate.

The acceptance criteria live here: injected regressions (a >=10% final
loss increase, a >=2x step-time slowdown) must exit non-zero, identical
logs exit zero, and truncated logs missing ``run_end`` are handled.
"""

import json
import math

import pytest

from repro import obs
from repro.obs.compare import (
    DEFAULT_GATES,
    Gate,
    _percentile,
    compare_summaries,
    load_summary,
    main,
    render_text,
    run_summary,
)


def _make_run_log(path, losses, step_seconds=0.01, val_f1=(0.5, 0.7),
                  truncate=False):
    """Write a synthetic but well-formed run log and return its events."""
    with obs.telemetry(run_log=str(path)) as tel:
        elapsed = 0.0
        for step, loss in enumerate(losses, start=1):
            elapsed += step_seconds
            tel.event("step", phase="block_train", step=step,
                      losses={"crf": loss, "total": loss}, elapsed=elapsed)
        for epoch, score in enumerate(val_f1):
            tel.event("eval", phase="block_train", epoch=epoch,
                      val_f1=score)
        with obs.trace("encode"):
            pass
        tel.metrics.counter("pipeline.documents").inc(amount=4)
        tel.metrics.timer("train.apply_step_seconds").observe(0.02)
    if truncate:
        lines = path.read_text().splitlines()
        assert json.loads(lines[-1])["event"] == "run_end"
        path.write_text("\n".join(lines[:-1]) + "\n")
    return obs.read_run_log(str(path))


LOSSES = [2.0, 1.5, 1.2, 1.0, 0.9, 0.8, 0.75, 0.7, 0.65, 0.6]


class TestRunSummary:
    def test_core_keys(self, tmp_path):
        events = _make_run_log(tmp_path / "run.jsonl", LOSSES)
        summary = run_summary(events)
        # final = mean of the last <=5 losses
        assert summary["loss.block_train.crf.final"] == pytest.approx(
            sum(LOSSES[-5:]) / 5
        )
        assert summary["loss.block_train.crf.min"] == pytest.approx(0.6)
        assert summary["steps.block_train.count"] == 10
        assert summary["steps.block_train.mean_step_seconds"] == pytest.approx(
            0.01, rel=0.01
        )
        assert summary["throughput.block_train.steps_per_s"] == pytest.approx(
            100.0, rel=0.01
        )
        assert summary["val.block_train.val_f1.last"] == 0.7
        assert summary["val.block_train.val_f1.best"] == 0.7
        assert summary["span.encode.calls"] == 1
        assert "span.encode.total_seconds" in summary
        assert summary["metric.pipeline.documents"] == 4
        assert summary["metric.train.apply_step_seconds.count"] == 1
        assert summary["run.complete"] == 1.0
        assert summary["run.status_ok"] == 1.0
        assert summary["alerts.count"] == 0

    def test_truncated_log_is_marked_incomplete(self, tmp_path):
        events = _make_run_log(
            tmp_path / "run.jsonl", LOSSES, truncate=True
        )
        summary = run_summary(events)
        assert summary["run.complete"] == 0.0
        # step series still summarized from what survived
        assert summary["steps.block_train.count"] == 10

    def test_empty_events(self):
        summary = run_summary([])
        assert summary["run.complete"] == 0.0
        assert summary["run.status_ok"] == 0.0
        assert summary["alerts.count"] == 0.0
        assert not any(k.startswith(("loss.", "steps.")) for k in summary)


class TestPercentile:
    def test_exact_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 50) == pytest.approx(2.5)
        assert _percentile(values, 0) == 1.0
        assert _percentile(values, 100) == 4.0
        assert _percentile([7.0], 95) == 7.0


class TestGate:
    def test_rel_increase(self):
        gate = Gate("loss.*", 0.05, "rel_increase")
        assert gate.evaluate(1.0, 1.04) == (False, pytest.approx(0.04))
        assert gate.evaluate(1.0, 1.10)[0] is True

    def test_ratio_with_timing_floor(self):
        gate = Gate("steps.*", 1.5, "ratio", timing=True)
        assert gate.evaluate(0.010, 0.025)[0] is True
        assert gate.evaluate(0.010, 0.012)[0] is False
        # sub-floor timings are jitter, never a regression
        assert gate.evaluate(0.00001, 0.00009)[0] is False

    def test_rel_decrease(self):
        gate = Gate("val.*", 0.05, "rel_decrease")
        assert gate.evaluate(0.80, 0.70)[0] is True
        assert gate.evaluate(0.80, 0.79)[0] is False
        assert gate.evaluate(0.80, 0.90)[0] is False


class TestCompareSummaries:
    def test_identical_logs_pass(self, tmp_path):
        events = _make_run_log(tmp_path / "run.jsonl", LOSSES)
        summary = run_summary(events)
        result = compare_summaries(summary, dict(summary))
        assert result["ok"] is True
        assert result["regressions"] == []

    def test_ten_percent_final_loss_regression_fails(self, tmp_path):
        baseline = run_summary(_make_run_log(tmp_path / "a.jsonl", LOSSES))
        worse = run_summary(_make_run_log(
            tmp_path / "b.jsonl", [x * 1.10 for x in LOSSES]
        ))
        result = compare_summaries(baseline, worse)
        assert result["ok"] is False
        assert any(
            r["key"] == "loss.block_train.crf.final"
            for r in result["regressions"]
        )

    def test_double_step_time_fails(self, tmp_path):
        baseline = run_summary(
            _make_run_log(tmp_path / "a.jsonl", LOSSES, step_seconds=0.01)
        )
        slow = run_summary(
            _make_run_log(tmp_path / "b.jsonl", LOSSES, step_seconds=0.02)
        )
        result = compare_summaries(baseline, slow)
        assert result["ok"] is False
        assert any(
            r["key"] == "steps.block_train.mean_step_seconds"
            for r in result["regressions"]
        )

    def test_no_timing_ignores_the_slowdown(self, tmp_path):
        baseline = run_summary(
            _make_run_log(tmp_path / "a.jsonl", LOSSES, step_seconds=0.01)
        )
        slow = run_summary(
            _make_run_log(tmp_path / "b.jsonl", LOSSES, step_seconds=0.02)
        )
        gates = [g for g in DEFAULT_GATES if not g.timing]
        assert compare_summaries(baseline, slow, gates=gates)["ok"] is True

    def test_validation_drop_fails(self, tmp_path):
        baseline = run_summary(
            _make_run_log(tmp_path / "a.jsonl", LOSSES, val_f1=(0.5, 0.8))
        )
        worse = run_summary(
            _make_run_log(tmp_path / "b.jsonl", LOSSES, val_f1=(0.5, 0.6))
        )
        result = compare_summaries(baseline, worse)
        assert any(
            r["key"] == "val.block_train.val_f1.best"
            for r in result["regressions"]
        )

    def test_tolerance_override_loosens_a_gate(self, tmp_path):
        baseline = run_summary(_make_run_log(tmp_path / "a.jsonl", LOSSES))
        worse = run_summary(_make_run_log(
            tmp_path / "b.jsonl", [x * 1.10 for x in LOSSES]
        ))
        gates = [
            Gate(g.pattern, 0.5, g.kind, timing=g.timing)
            if g.pattern.startswith("loss.") else g
            for g in DEFAULT_GATES
        ]
        assert compare_summaries(baseline, worse, gates=gates)["ok"] is True

    def test_missing_keys_are_reported_not_fatal(self, tmp_path):
        baseline = run_summary(_make_run_log(tmp_path / "a.jsonl", LOSSES))
        candidate = {
            k: v for k, v in baseline.items() if not k.startswith("val.")
        }
        result = compare_summaries(baseline, candidate)
        assert result["ok"] is True
        assert any(k.startswith("val.") for k in result["only_baseline"])

    def test_render_text_mentions_the_regression(self, tmp_path):
        baseline = run_summary(_make_run_log(tmp_path / "a.jsonl", LOSSES))
        worse = run_summary(_make_run_log(
            tmp_path / "b.jsonl", [x * 1.5 for x in LOSSES]
        ))
        text = render_text(compare_summaries(baseline, worse))
        assert "REGRESSION" in text
        assert "loss.block_train.crf.final" in text


class TestLoadSummary:
    def test_loads_run_logs_and_flat_json(self, tmp_path):
        log_path = tmp_path / "run.jsonl"
        events = _make_run_log(log_path, LOSSES)
        from_log, meta = load_summary(str(log_path))
        assert meta["complete"] is True and meta["status"] == "ok"

        flat_path = tmp_path / "summary.json"
        flat_path.write_text(json.dumps({"loss": {"final": 1.0}, "n": 2}))
        from_flat, flat_meta = load_summary(str(flat_path))
        assert from_flat == {"loss.final": 1.0, "n": 2.0}
        assert flat_meta["format"] == "json"

    def test_truncated_log_meta(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _make_run_log(path, LOSSES, truncate=True)
        _, meta = load_summary(str(path))
        assert meta["complete"] is False


class TestCli:
    def _logs(self, tmp_path, factor=1.0, step_seconds=0.01, truncate=False):
        base = tmp_path / "baseline.jsonl"
        cand = tmp_path / "candidate.jsonl"
        _make_run_log(base, LOSSES)
        _make_run_log(cand, [x * factor for x in LOSSES],
                      step_seconds=step_seconds, truncate=truncate)
        return str(base), str(cand)

    def test_identical_logs_exit_zero(self, tmp_path, capsys):
        base, _ = self._logs(tmp_path)
        assert main([base, base]) == 0
        assert "ok" in capsys.readouterr().out

    def test_loss_regression_exits_one(self, tmp_path, capsys):
        base, cand = self._logs(tmp_path, factor=1.10)
        assert main([base, cand]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_step_time_regression_exits_one(self, tmp_path):
        base, cand = self._logs(tmp_path, step_seconds=0.021)
        assert main([base, cand]) == 1
        assert main([base, cand, "--no-timing"]) == 0

    def test_tolerance_flag(self, tmp_path):
        base, cand = self._logs(tmp_path, factor=1.10)
        assert main([base, cand, "--tolerance", "loss.*.final=0.5",
                     "--tolerance", "loss.*.min=0.5"]) == 0

    def test_bad_tolerance_exits_two(self, tmp_path, capsys):
        base, _ = self._logs(tmp_path)
        assert main([base, base, "--tolerance", "nonsense"]) == 2
        assert main([base, base, "--tolerance", "loss.*=abc"]) == 2
        capsys.readouterr()

    def test_missing_file_exits_two(self, tmp_path, capsys):
        base, _ = self._logs(tmp_path)
        assert main([base, str(tmp_path / "absent.jsonl")]) == 2
        capsys.readouterr()

    def test_truncated_candidate_needs_require_complete(self, tmp_path, capsys):
        base, cand = self._logs(tmp_path, truncate=True)
        assert main([base, cand]) == 0  # warning only
        assert main([base, cand, "--require-complete"]) == 1
        capsys.readouterr()

    def test_json_output_shapes(self, tmp_path, capsys):
        base, cand = self._logs(tmp_path, factor=1.5)
        out_path = tmp_path / "diff.json"
        code = main([base, cand, "--json", "--json-out", str(out_path)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["regressions"]
        assert json.loads(out_path.read_text()) == payload
