"""Benchmark trajectory: record shape, gating semantics, CLI contract.

Contract under test: :func:`write_bench_report` keeps the one-shot
``BENCH_*.json`` byte-compatible with ``write_json`` while also
appending a summarized, committed JSONL record; the summary carries only
the tracked key patterns (never the telemetry subtree); smoke records
are recorded but never gated; and ``--check`` gates the latest full
record against the per-key trailing median with compare's Gate
semantics (2x latency ratio with the micro-timing floor, halved
throughput).
"""

import json
import os

from repro.obs import bench_history as bh


def _report(seconds=1.0, throughput=100.0, smoke=False):
    return {
        "smoke": smoke,
        "stages": {"encode": {"seconds": seconds}},
        "per_document_predict": {"throughput_per_second": throughput},
        "speedup_per_resume": 3.0,
        "config": {"batch_size": 8},  # not a tracked pattern
        "telemetry": {
            "metrics": {"ignored.seconds": 1.0},
            "spans": {"a": {}, "b": {}},
        },
    }


def _seed(tmp_path, reports):
    """Write a history file from a sequence of report dicts."""
    history_dir = str(tmp_path / "history")
    for report in reports:
        bh.append_record(
            str(tmp_path / "BENCH_demo.json"), report, history_dir=history_dir
        )
    return os.path.join(history_dir, "demo.jsonl")


class TestSummarize:
    def test_tracked_patterns_only(self):
        summary = bh.summarize_report(_report())
        assert summary == {
            "per_document_predict.throughput_per_second": 100.0,
            "speedup_per_resume": 3.0,
            "stages.encode.seconds": 1.0,
        }

    def test_telemetry_subtree_excluded_even_when_keys_match(self):
        summary = bh.summarize_report(_report())
        assert not any(key.startswith("telemetry.") for key in summary)

    def test_bench_name_strips_prefix(self):
        assert bh.bench_name("/x/BENCH_training.json") == "training"
        assert bh.bench_name("plain.jsonl") == "plain"


class TestAppendRecord:
    def test_record_shape_and_provenance(self, tmp_path):
        path = _seed(tmp_path, [_report()])
        (record,) = bh.load_history(path)
        assert record["bench"] == "demo"
        assert record["smoke"] is False
        assert record["telemetry"] == {"metrics": 1, "spans": 2}
        assert "recorded_at" in record and "git_sha" in record
        assert record["summary"]["stages.encode.seconds"] == 1.0

    def test_records_append_not_overwrite(self, tmp_path):
        path = _seed(tmp_path, [_report(), _report(seconds=2.0)])
        records = bh.load_history(path)
        assert [r["summary"]["stages.encode.seconds"] for r in records] == [
            1.0, 2.0,
        ]

    def test_write_bench_report_emits_both_artifacts(self, tmp_path):
        report_path = str(tmp_path / "BENCH_demo.json")
        history_dir = str(tmp_path / "history")
        bh.write_bench_report(report_path, _report(), history_dir=history_dir)
        with open(report_path, encoding="utf-8") as handle:
            assert json.load(handle)["speedup_per_resume"] == 3.0
        assert len(bh.load_history(
            os.path.join(history_dir, "demo.jsonl")
        )) == 1


class TestCheckHistory:
    def test_single_record_passes_trivially(self, tmp_path):
        verdict = bh.check_history(_seed(tmp_path, [_report()]))
        assert verdict["ok"] is True and verdict["gated"] is False

    def test_stable_trajectory_passes(self, tmp_path):
        path = _seed(tmp_path, [_report(seconds=s) for s in (1.0, 1.1, 0.95)])
        verdict = bh.check_history(path)
        assert verdict["ok"] is True and verdict["gated"] is True

    def test_latency_regression_vs_trailing_median_fails(self, tmp_path):
        path = _seed(
            tmp_path,
            [_report(), _report(seconds=1.1), _report(seconds=2.5)],
        )
        verdict = bh.check_history(path)
        assert verdict["ok"] is False
        keys = [
            r["key"] for r in verdict["comparison"]["regressions"]
        ]
        assert keys == ["stages.encode.seconds"]

    def test_throughput_halving_fails(self, tmp_path):
        path = _seed(
            tmp_path, [_report(), _report(), _report(throughput=30.0)]
        )
        verdict = bh.check_history(path)
        assert verdict["ok"] is False
        keys = [r["key"] for r in verdict["comparison"]["regressions"]]
        assert "per_document_predict.throughput_per_second" in keys

    def test_smoke_records_never_gate(self, tmp_path):
        """A shrunk CI run that looks 10x slower must not trip the gate."""
        path = _seed(
            tmp_path, [_report(), _report(seconds=10.0, smoke=True)]
        )
        verdict = bh.check_history(path)
        assert verdict["ok"] is True and verdict["gated"] is False
        assert verdict["records"] == 2 and verdict["full_records"] == 1

    def test_median_absorbs_one_noisy_run(self, tmp_path):
        path = _seed(
            tmp_path,
            [_report(), _report(seconds=5.0), _report(), _report(seconds=1.2)],
        )
        assert bh.check_history(path)["ok"] is True

    def test_trailing_window_bounds_the_baseline(self, tmp_path):
        """Old fast records beyond the window can't gate the present."""
        path = _seed(
            tmp_path,
            [_report(seconds=0.1)] * 3 + [_report(seconds=3.0)] * 4,
        )
        assert bh.check_history(path, trailing=3)["ok"] is True


class TestCommittedHistory:
    def test_repo_history_passes_check(self):
        """The committed seeds must keep ``--check`` green."""
        assert bh.main(["--check"]) == 0

    def test_repo_history_has_all_four_benches(self):
        files = bh._history_files(bh.DEFAULT_HISTORY_DIR, ())
        names = {bh.bench_name(path) for path in files}
        assert {"block_inference", "training", "parallel",
                "quantized_inference"} <= names
        for path in files:
            for record in bh.load_history(path):
                assert record["summary"], f"empty summary in {path}"


class TestCli:
    def test_trend_renders_sparklines(self, tmp_path, capsys):
        _seed(tmp_path, [_report(seconds=s) for s in (1.0, 1.5, 2.0)])
        code = bh.main(["--history-dir", str(tmp_path / "history")])
        out = capsys.readouterr().out
        assert code == 0
        assert "demo — 3 record(s)" in out
        assert "stages.encode.seconds" in out

    def test_check_regression_exits_one_with_attribution(
        self, tmp_path, capsys
    ):
        _seed(tmp_path, [_report(), _report(), _report(seconds=2.5)])
        code = bh.main(
            ["--check", "--history-dir", str(tmp_path / "history")]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "demo: REGRESSED" in out
        assert "stages.encode.seconds: 1 -> 2.5" in out

    def test_check_json_emits_verdicts(self, tmp_path, capsys):
        _seed(tmp_path, [_report(), _report()])
        code = bh.main(
            ["--check", "--json", "--history-dir", str(tmp_path / "history")]
        )
        verdicts = json.loads(capsys.readouterr().out)
        assert code == 0
        assert verdicts[0]["bench"] == "demo" and verdicts[0]["ok"] is True

    def test_missing_history_dir_exits_two(self, tmp_path, capsys):
        code = bh.main(["--history-dir", str(tmp_path / "nope")])
        assert code == 2
        assert "no history" in capsys.readouterr().err

    def test_corrupt_history_exits_two(self, tmp_path, capsys):
        history_dir = tmp_path / "history"
        history_dir.mkdir()
        (history_dir / "bad.jsonl").write_text("{not json\n")
        code = bh.main(["--check", "--history-dir", str(history_dir)])
        assert code == 2
        assert "error reading" in capsys.readouterr().err
