"""limit_blas_threads: defaulting vs explicit-override semantics."""

import os

from repro._threads import _ENV_VARS, blas_thread_counts, limit_blas_threads


def test_default_fills_unset_variables(monkeypatch):
    for var in _ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    limit_blas_threads()
    for var in _ENV_VARS:
        assert os.environ[var] == "1"


def test_default_respects_preset_environment(monkeypatch):
    monkeypatch.setenv("OMP_NUM_THREADS", "8")
    limit_blas_threads()
    assert os.environ["OMP_NUM_THREADS"] == "8"


def test_explicit_count_overrides_preset_environment(monkeypatch):
    for var in _ENV_VARS:
        monkeypatch.setenv(var, "8")
    limit_blas_threads(2)
    for var in _ENV_VARS:
        assert os.environ[var] == "2"


def test_blas_thread_counts_reports_every_variable(monkeypatch):
    # The parallel worker ready-handshake ships this dict, so it must
    # cover exactly the variables limit_blas_threads manages.
    for var in _ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    assert blas_thread_counts() == {var: None for var in _ENV_VARS}
    limit_blas_threads(3)
    assert blas_thread_counts() == {var: "3" for var in _ENV_VARS}
