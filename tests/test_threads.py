"""limit_blas_threads: defaulting vs explicit-override semantics."""

import os

from repro._threads import _ENV_VARS, limit_blas_threads


def test_default_fills_unset_variables(monkeypatch):
    for var in _ENV_VARS:
        monkeypatch.delenv(var, raising=False)
    limit_blas_threads()
    for var in _ENV_VARS:
        assert os.environ[var] == "1"


def test_default_respects_preset_environment(monkeypatch):
    monkeypatch.setenv("OMP_NUM_THREADS", "8")
    limit_blas_threads()
    assert os.environ["OMP_NUM_THREADS"] == "8"


def test_explicit_count_overrides_preset_environment(monkeypatch):
    for var in _ENV_VARS:
        monkeypatch.setenv(var, "8")
    limit_blas_threads(2)
    for var in _ENV_VARS:
        assert os.environ[var] == "2"
