"""Tests for normalisation, vocabulary and WordPiece tokenisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    CLS,
    MASK,
    PAD,
    SEP,
    UNK,
    Vocab,
    WordPieceTokenizer,
    normalize_text,
    pretokenize,
    train_wordpiece,
)


class TestNormalize:
    def test_lowercases_and_collapses_whitespace(self):
        assert normalize_text("  Hello\t WORLD \n") == "hello world"

    def test_nfkc(self):
        assert normalize_text("ｆｕｌｌｗｉｄｔｈ") == "fullwidth"

    def test_pretokenize_splits_punctuation(self):
        assert pretokenize("alice@example.com") == [
            "alice", "@", "example", ".", "com",
        ]

    def test_pretokenize_empty(self):
        assert pretokenize("   ") == []

    def test_pretokenize_dates(self):
        assert pretokenize("2019.07-2021.06") == [
            "2019", ".", "07", "-", "2021", ".", "06",
        ]


class TestVocab:
    def test_special_tokens_first(self):
        vocab = Vocab(["apple", "pear"])
        assert vocab.pad_id == 0
        assert vocab.id_to_token(0) == PAD
        assert {UNK, CLS, SEP, MASK} <= set(vocab.tokens())

    def test_unknown_maps_to_unk(self):
        vocab = Vocab(["apple"])
        assert vocab.token_to_id("zebra") == vocab.unk_id

    def test_duplicates_ignored(self):
        vocab = Vocab(["a", "a", "b"])
        assert len(vocab) == 5 + 2

    def test_encode_decode_roundtrip(self):
        vocab = Vocab(["x", "y"])
        ids = vocab.encode(["x", "y", "x"])
        assert vocab.decode(ids) == ["x", "y", "x"]

    def test_save_load(self, tmp_path):
        vocab = Vocab(["alpha", "beta"])
        path = str(tmp_path / "vocab.json")
        vocab.save(path)
        loaded = Vocab.load(path)
        assert loaded.tokens() == vocab.tokens()

    def test_load_rejects_bad_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('["a", "b"]')
        with pytest.raises(ValueError):
            Vocab.load(str(path))


CORPUS = [
    "software engineer at acme corporation",
    "senior software engineer",
    "engineering college of software",
    "software development engineer in test",
    "the engineer wrote software for engineering teams",
]


class TestTrainWordpiece:
    def test_learns_frequent_merges(self):
        vocab = train_wordpiece(CORPUS, vocab_size=200, min_frequency=2)
        tokenizer = WordPieceTokenizer(vocab)
        # 'software' appears 5 times: should become few pieces.
        assert len(tokenizer.tokenize_word("software")) <= 3

    def test_vocab_size_respected(self):
        vocab = train_wordpiece(CORPUS, vocab_size=50, min_frequency=1)
        assert len(vocab) <= 50 + 5  # +5 specials

    def test_alphabet_always_included(self):
        vocab = train_wordpiece(["abc"], vocab_size=10, min_frequency=100)
        assert "a" in vocab
        assert "##b" in vocab
        assert "##c" in vocab


class TestWordPieceTokenizer:
    @pytest.fixture(scope="class")
    def tokenizer(self):
        return WordPieceTokenizer.train(CORPUS, vocab_size=300, min_frequency=1)

    def test_known_words_never_unk(self, tokenizer):
        for word in "software engineer acme".split():
            assert UNK not in tokenizer.tokenize_word(word)

    def test_unknown_char_gives_unk(self, tokenizer):
        assert tokenizer.tokenize_word("日本語") == [UNK]

    def test_continuation_markers(self, tokenizer):
        pieces = tokenizer.tokenize_word("engineering")
        assert all(p.startswith("##") for p in pieces[1:])
        assert not pieces[0].startswith("##")

    def test_roundtrip_join(self, tokenizer):
        pieces = tokenizer.tokenize_word("software")
        joined = pieces[0] + "".join(p[2:] for p in pieces[1:])
        assert joined == "software"

    def test_encode_returns_ids(self, tokenizer):
        ids = tokenizer.encode("software engineer")
        assert all(isinstance(i, int) for i in ids)
        assert tokenizer.vocab.unk_id not in ids

    def test_decode_inverse(self, tokenizer):
        ids = tokenizer.encode("software engineer")
        assert tokenizer.decode(ids) == "software engineer"

    def test_overlong_word_is_unk(self, tokenizer):
        assert tokenizer.tokenize_word("x" * 100) == [UNK]

    def test_punctuated_word_falls_back_to_chunks(self):
        tok = WordPieceTokenizer.train(
            ["call 892 384 2824 in 2019 07 now"], vocab_size=100, min_frequency=1
        )
        pieces = tok.tokenize_word("2019.07")
        assert UNK not in pieces or pieces.count(UNK) < len(pieces)
        assert "2019" in pieces
        assert "07" in pieces

    def test_email_splits_into_chunks(self):
        tok = WordPieceTokenizer.train(
            ["jane doe example com now and then"], vocab_size=200, min_frequency=1
        )
        pieces = tok.tokenize_word("jane.doe@example.com")
        assert "jane" in pieces
        assert "example" in pieces

    def test_tokenize_word_cached(self, tokenizer):
        first = tokenizer.tokenize_word("software")
        second = tokenizer.tokenize_word("software")
        assert first == second
        assert first is not second  # caller-safe copies

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll",)), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_pieces_reconstruct_word(self, tokenizer, word):
        pieces = tokenizer.tokenize_word(word)
        if pieces == [UNK] or not word:
            return
        joined = pieces[0] + "".join(p[2:] for p in pieces[1:])
        assert joined == word
