"""Tests for the skip-gram word2vec trainer."""

import numpy as np
import pytest

from repro.text import Vocab, Word2VecConfig, Word2VecModel, train_word2vec

CORPUS = [
    "software engineer builds software systems",
    "senior software engineer ships software",
    "data analyst studies data reports",
    "data analyst reviews data tables",
    "software engineer writes software tests",
    "data analyst cleans data pipelines",
] * 5


class TestTrainWord2Vec:
    @pytest.fixture(scope="class")
    def model(self):
        return train_word2vec(
            CORPUS, Word2VecConfig(dim=24, epochs=6, window=2, seed=1)
        )

    def test_vectors_align_with_vocab(self, model):
        assert model.vectors.shape == (len(model.vocab), 24)

    def test_cooccurring_words_more_similar(self, model):
        # 'software' co-occurs with 'engineer'; 'data' with 'analyst'.
        assert model.similarity("software", "engineer") > model.similarity(
            "software", "analyst"
        )
        assert model.similarity("data", "analyst") > model.similarity(
            "data", "engineer"
        )

    def test_most_similar_excludes_query_and_specials(self, model):
        results = model.most_similar("software", top=3)
        words = [w for w, _ in results]
        assert "software" not in words
        assert all(not w.startswith("[") for w in words)
        assert len(results) == 3

    def test_deterministic(self):
        a = train_word2vec(CORPUS, Word2VecConfig(dim=8, epochs=1, seed=3))
        b = train_word2vec(CORPUS, Word2VecConfig(dim=8, epochs=1, seed=3))
        np.testing.assert_allclose(a.vectors, b.vectors)

    def test_external_vocab_alignment(self):
        vocab = Vocab(["software", "engineer", "zebra"])
        model = train_word2vec(
            CORPUS, Word2VecConfig(dim=8, epochs=1, seed=0), vocab=vocab
        )
        assert model.vectors.shape == (len(vocab), 8)
        # 'zebra' never occurs: keeps its (small) random initialisation.
        assert np.abs(model.vector("zebra")).max() < 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Word2VecConfig(dim=0)

    def test_model_shape_mismatch_rejected(self):
        vocab = Vocab(["a"])
        with pytest.raises(ValueError):
            Word2VecModel(vocab, np.zeros((3, 4)))
