"""Tests for multi-head attention and Transformer encoders."""

import numpy as np
import pytest

from repro.nn import (
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
)

RNG = np.random.default_rng(5)


def make_attention(dim=16, heads=4):
    return MultiHeadSelfAttention(dim, heads, dropout=0.0, rng=np.random.default_rng(1))


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = make_attention()
        out = attn(Tensor(RNG.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_masked_keys_are_ignored(self):
        attn = make_attention()
        attn.eval()
        x = RNG.normal(size=(1, 4, 16))
        mask = np.array([[1, 1, 1, 0]])
        base = attn(Tensor(x), attention_mask=mask).numpy()
        # Perturbing the masked position must not change valid outputs.
        perturbed = x.copy()
        perturbed[0, 3] += 100.0
        out = attn(Tensor(perturbed), attention_mask=mask).numpy()
        np.testing.assert_allclose(base[:, :3], out[:, :3], atol=1e-8)

    def test_gradients_flow_to_all_projections(self):
        attn = make_attention()
        out = attn(Tensor(RNG.normal(size=(1, 3, 16)), requires_grad=True))
        out.sum().backward()
        for name, param in attn.named_parameters():
            assert param.grad is not None, name

    def test_permutation_equivariance_without_mask(self):
        # Self-attention without positional info is permutation-equivariant.
        attn = make_attention()
        attn.eval()
        x = RNG.normal(size=(1, 5, 16))
        out = attn(Tensor(x)).numpy()
        perm = np.array([4, 2, 0, 1, 3])
        out_perm = attn(Tensor(x[:, perm])).numpy()
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-8)


class TestTransformerEncoder:
    def test_layer_shape(self):
        layer = TransformerEncoderLayer(16, 4, dropout=0.0, rng=np.random.default_rng(2))
        out = layer(Tensor(RNG.normal(size=(2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_stack_depth(self):
        enc = TransformerEncoder(3, 16, 4, dropout=0.0, rng=np.random.default_rng(3))
        assert len(enc.layers) == 3
        out = enc(Tensor(RNG.normal(size=(1, 4, 16))))
        assert out.shape == (1, 4, 16)

    def test_mask_respected_through_stack(self):
        enc = TransformerEncoder(2, 16, 4, dropout=0.0, rng=np.random.default_rng(4))
        enc.eval()
        x = RNG.normal(size=(1, 5, 16))
        mask = np.array([[1, 1, 1, 1, 0]])
        base = enc(Tensor(x), attention_mask=mask).numpy()
        perturbed = x.copy()
        perturbed[0, 4] += 50.0
        out = enc(Tensor(perturbed), attention_mask=mask).numpy()
        np.testing.assert_allclose(base[:, :4], out[:, :4], atol=1e-7)

    def test_training_reduces_loss(self):
        # A tiny regression sanity check: the encoder can fit random targets.
        from repro.nn import Adam, ParamGroup
        from repro.nn import functional as F

        enc = TransformerEncoder(1, 8, 2, dropout=0.0, rng=np.random.default_rng(5))
        x = Tensor(RNG.normal(size=(4, 3, 8)))
        target = RNG.normal(size=(4, 3, 8))
        opt = Adam([ParamGroup(enc.parameters(), 1e-2)])
        first = None
        for _ in range(30):
            opt.zero_grad()
            loss = F.mse_loss(enc(x), target)
            loss.backward()
            opt.step()
            first = first if first is not None else float(loss.data)
        assert float(loss.data) < first * 0.7
