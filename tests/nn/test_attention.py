"""Tests for multi-head attention and Transformer encoders."""

import numpy as np
import pytest

from repro.nn import (
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
)

RNG = np.random.default_rng(5)


def make_attention(dim=16, heads=4):
    return MultiHeadSelfAttention(dim, heads, dropout=0.0, rng=np.random.default_rng(1))


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = make_attention()
        out = attn(Tensor(RNG.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_masked_keys_are_ignored(self):
        attn = make_attention()
        attn.eval()
        x = RNG.normal(size=(1, 4, 16))
        mask = np.array([[1, 1, 1, 0]])
        base = attn(Tensor(x), attention_mask=mask).numpy()
        # Perturbing the masked position must not change valid outputs.
        perturbed = x.copy()
        perturbed[0, 3] += 100.0
        out = attn(Tensor(perturbed), attention_mask=mask).numpy()
        np.testing.assert_allclose(base[:, :3], out[:, :3], atol=1e-8)

    def test_gradients_flow_to_all_projections(self):
        attn = make_attention()
        out = attn(Tensor(RNG.normal(size=(1, 3, 16)), requires_grad=True))
        out.sum().backward()
        for name, param in attn.named_parameters():
            assert param.grad is not None, name

    def test_permutation_equivariance_without_mask(self):
        # Self-attention without positional info is permutation-equivariant.
        attn = make_attention()
        attn.eval()
        x = RNG.normal(size=(1, 5, 16))
        out = attn(Tensor(x)).numpy()
        perm = np.array([4, 2, 0, 1, 3])
        out_perm = attn(Tensor(x[:, perm])).numpy()
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-8)


class TestFusedAttentionAgainstReference:
    """The fused attention op must match the compositional reference."""

    MASKS = {
        "none": None,
        "ragged": np.array([[1, 1, 1, 1, 0], [1, 1, 0, 0, 0]]),
    }

    @pytest.mark.parametrize("mask_kind", ["none", "ragged"])
    def test_outputs_and_gradients_match(self, mask_kind):
        attn = make_attention()
        attn.eval()
        mask = self.MASKS[mask_kind]
        base = RNG.normal(size=(2, 5, 16))
        weights = RNG.normal(size=(2, 5, 16))

        def run(fn):
            attn.zero_grad()
            x = Tensor(base.copy(), requires_grad=True)
            out = fn(x)
            (out * Tensor(weights)).sum().backward()
            grads = {name: p.grad.copy() for name, p in attn.named_parameters()}
            return out.numpy().copy(), x.grad.copy(), grads

        # eval + dropout=0 routes forward() through fused_self_attention.
        fused = run(lambda x: attn(x, attention_mask=mask))
        ref = run(lambda x: attn._forward_reference(x, attention_mask=mask))
        np.testing.assert_allclose(fused[0], ref[0], atol=1e-9)
        np.testing.assert_allclose(fused[1], ref[1], atol=1e-9)
        for name in ref[2]:
            np.testing.assert_allclose(
                fused[2][name], ref[2][name], atol=1e-9, err_msg=name
            )


class TestInferenceKernels:
    """Raw-ndarray inference kernels vs the compositional graph path."""

    def test_forward_inference_bitwise_at_float64(self):
        attn = make_attention()
        attn.eval()
        x = RNG.normal(size=(2, 6, 16))
        mask = np.array([[1, 1, 1, 1, 1, 1], [1, 1, 1, 1, 0, 0]])
        expected = attn._forward_reference(
            Tensor(x), attention_mask=mask
        ).numpy()
        got = attn._forward_inference(x, attention_mask=mask)
        np.testing.assert_array_equal(got, expected)

    def test_infer_block_matches_per_group_inference(self):
        attn = make_attention()
        attn.eval()
        groups = [(2, 4), (3, 6)]  # (n sequences, t timesteps) per group
        masks, chunks, blocks, offset = [], [], [], 0
        for n, t in groups:
            mask = np.ones((n, t), dtype=np.int64)
            mask[:, t - 1] = 0  # ragged tails
            masks.append(mask)
            chunks.append(RNG.normal(size=(n, t, 16)))
            blocks.append((offset, n, t))
            offset += n * t
        flat = np.concatenate([c.reshape(-1, 16) for c in chunks])
        out = attn._infer_block(flat, blocks, masks)
        for (start, n, t), chunk, mask in zip(blocks, chunks, masks):
            expected = attn._forward_inference(chunk, attention_mask=mask)
            np.testing.assert_array_equal(
                out[start : start + n * t].reshape(n, t, 16), expected
            )

    def test_encoder_infer_matches_compositional_stack(self):
        # LayerNorm.infer computes its variance as a fused einsum, which
        # lands within a ulp of the compositional Tensor-op reduction the
        # graph path uses under grad — so the whole-stack comparison is
        # tight allclose, not bitwise (the attention core alone *is*
        # bitwise; see test_forward_inference_bitwise_at_float64).
        enc = TransformerEncoder(2, 16, 4, dropout=0.0, rng=np.random.default_rng(6))
        enc.eval()
        x = RNG.normal(size=(2, 5, 16))
        mask = np.array([[1, 1, 1, 1, 1], [1, 1, 1, 0, 0]])
        enc.fused_inference = False
        expected = enc(Tensor(x), attention_mask=mask).numpy()
        enc.fused_inference = True
        np.testing.assert_allclose(
            enc.infer(x, attention_mask=mask), expected, rtol=0, atol=1e-13
        )

    def test_encoder_routes_to_infer_under_no_grad(self):
        from repro.nn import no_grad

        enc = TransformerEncoder(1, 16, 4, dropout=0.0, rng=np.random.default_rng(7))
        enc.eval()
        x = RNG.normal(size=(1, 4, 16))
        with no_grad():
            routed = enc(Tensor(x)).numpy()
        np.testing.assert_array_equal(routed, enc.infer(x))

    def test_float32_pipeline_stays_float32_and_close(self):
        enc = TransformerEncoder(2, 16, 4, dropout=0.0, rng=np.random.default_rng(8))
        enc.eval()
        x = RNG.normal(size=(2, 5, 16))
        reference = enc.infer(x)
        enc.inference_dtype = np.float32
        narrow = enc.infer(x)
        assert narrow.dtype == np.float32
        np.testing.assert_allclose(narrow, reference, atol=1e-4)


class TestTransformerEncoder:
    def test_layer_shape(self):
        layer = TransformerEncoderLayer(16, 4, dropout=0.0, rng=np.random.default_rng(2))
        out = layer(Tensor(RNG.normal(size=(2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_stack_depth(self):
        enc = TransformerEncoder(3, 16, 4, dropout=0.0, rng=np.random.default_rng(3))
        assert len(enc.layers) == 3
        out = enc(Tensor(RNG.normal(size=(1, 4, 16))))
        assert out.shape == (1, 4, 16)

    def test_mask_respected_through_stack(self):
        enc = TransformerEncoder(2, 16, 4, dropout=0.0, rng=np.random.default_rng(4))
        enc.eval()
        x = RNG.normal(size=(1, 5, 16))
        mask = np.array([[1, 1, 1, 1, 0]])
        base = enc(Tensor(x), attention_mask=mask).numpy()
        perturbed = x.copy()
        perturbed[0, 4] += 50.0
        out = enc(Tensor(perturbed), attention_mask=mask).numpy()
        np.testing.assert_allclose(base[:, :4], out[:, :4], atol=1e-7)

    def test_training_reduces_loss(self):
        # A tiny regression sanity check: the encoder can fit random targets.
        from repro.nn import Adam, ParamGroup
        from repro.nn import functional as F

        enc = TransformerEncoder(1, 8, 2, dropout=0.0, rng=np.random.default_rng(5))
        x = Tensor(RNG.normal(size=(4, 3, 8)))
        target = RNG.normal(size=(4, 3, 8))
        opt = Adam([ParamGroup(enc.parameters(), 1e-2)])
        first = None
        for _ in range(30):
            opt.zero_grad()
            loss = F.mse_loss(enc(x), target)
            loss.backward()
            opt.step()
            first = first if first is not None else float(loss.data)
        assert float(loss.data) < first * 0.7
