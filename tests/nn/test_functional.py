"""Tests for repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

from ..helpers import check_grad

RNG = np.random.default_rng(7)


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self):
        x = Tensor(RNG.normal(size=(4, 6)) * 5)
        probs = F.softmax(x).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)
        assert np.all(probs >= 0)

    def test_softmax_matches_scipy(self):
        from scipy.special import softmax as scipy_softmax

        x = RNG.normal(size=(3, 5))
        np.testing.assert_allclose(
            F.softmax(Tensor(x)).numpy(), scipy_softmax(x, axis=-1), atol=1e-12
        )

    def test_softmax_stable_under_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0, 0.0]]))
        probs = F.softmax(x).numpy()
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs[0, :2], [0.5, 0.5], atol=1e-6)

    def test_softmax_grad(self):
        check_grad(
            lambda t: (F.softmax(t) ** 2).sum(), RNG.normal(size=(3, 4))
        )

    def test_log_softmax_grad(self):
        weights = Tensor(RNG.normal(size=(3, 4)))
        check_grad(
            lambda t: (F.log_softmax(t) * weights).sum(),
            RNG.normal(size=(3, 4)),
        )

    def test_logsumexp_matches_scipy(self):
        from scipy.special import logsumexp as scipy_lse

        x = RNG.normal(size=(3, 6)) * 10
        np.testing.assert_allclose(
            F.logsumexp(Tensor(x), axis=1).numpy(), scipy_lse(x, axis=1), atol=1e-10
        )

    def test_logsumexp_keepdims(self):
        x = Tensor(RNG.normal(size=(3, 6)))
        assert F.logsumexp(x, axis=1, keepdims=True).shape == (3, 1)
        assert F.logsumexp(x, axis=1).shape == (3,)

    def test_logsumexp_grad(self):
        check_grad(
            lambda t: F.logsumexp(t, axis=-1).sum(), RNG.normal(size=(2, 5))
        )

    def test_logsumexp_handles_neg_inf_rows(self):
        x = Tensor(np.full((2, 3), -1e9))
        out = F.logsumexp(x, axis=1).numpy()
        assert np.isfinite(out).all()


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert float(loss.data) == pytest.approx(np.log(3))

    def test_cross_entropy_grad(self):
        targets = np.array([1, 0, 3])
        check_grad(
            lambda t: F.cross_entropy(t, targets), RNG.normal(size=(3, 4))
        )

    def test_cross_entropy_mask(self):
        logits = RNG.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 0])
        mask = np.array([1, 1, 0, 0])
        masked = F.cross_entropy(Tensor(logits), targets, mask=mask)
        manual = F.cross_entropy(Tensor(logits[:2]), targets[:2])
        assert float(masked.data) == pytest.approx(float(manual.data))

    def test_cross_entropy_all_masked_is_finite(self):
        logits = Tensor(RNG.normal(size=(2, 3)))
        loss = F.cross_entropy(logits, np.array([0, 1]), mask=np.zeros(2))
        assert np.isfinite(float(loss.data))

    def test_kl_div_equals_ce_on_hard_targets(self):
        logits = RNG.normal(size=(5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        onehot = np.eye(4)[targets]
        kl = F.kl_div_loss(Tensor(logits), onehot)
        ce = F.cross_entropy(Tensor(logits), targets)
        assert float(kl.data) == pytest.approx(float(ce.data))

    def test_kl_div_grad(self):
        soft = np.abs(RNG.normal(size=(3, 4)))
        soft /= soft.sum(axis=-1, keepdims=True)
        check_grad(lambda t: F.kl_div_loss(t, soft), RNG.normal(size=(3, 4)))

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])


class TestGelu:
    def test_gelu_values(self):
        x = Tensor(np.array([0.0, 1.0, -1.0]))
        out = F.gelu(x).numpy()
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(0.8412, abs=1e-3)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)

    def test_gelu_grad(self):
        check_grad(lambda t: F.gelu(t).sum(), RNG.normal(size=(6,)))


class TestNormalizeAndMask:
    def test_l2_normalize_unit_norm(self):
        x = Tensor(RNG.normal(size=(4, 8)))
        out = F.l2_normalize(x).numpy()
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.ones(4), atol=1e-9
        )

    def test_l2_normalize_grad(self):
        weights = Tensor(RNG.normal(size=(2, 4)))
        check_grad(
            lambda t: (F.l2_normalize(t) * weights).sum(),
            RNG.normal(size=(2, 4)),
        )

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 3)))
        mask = np.array([[True, False, False], [False, False, True]])
        out = F.masked_fill(x, mask, -5.0).numpy()
        assert out[0, 0] == -5.0
        assert out[1, 2] == -5.0
        assert out[0, 1] == 1.0

    def test_masked_fill_blocks_grad_at_masked(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, False]])
        F.masked_fill(x, mask, 0.0).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1], [1, 1]])


@given(st.integers(2, 6), st.integers(2, 6))
@settings(max_examples=25, deadline=None)
def test_property_log_softmax_normalised(rows, cols):
    x = Tensor(np.random.default_rng(rows * 7 + cols).normal(size=(rows, cols)))
    logp = F.log_softmax(x).numpy()
    np.testing.assert_allclose(np.exp(logp).sum(axis=-1), np.ones(rows), atol=1e-9)
