"""Tests for layers, modules and initialisation."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Mlp,
    Module,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
    init,
)

from ..helpers import check_grad

RNG = np.random.default_rng(11)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 7, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_batched_input(self):
        layer = Linear(4, 7, rng=RNG)
        out = layer(Tensor(RNG.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 7)

    def test_no_bias(self):
        layer = Linear(4, 7, bias=False, rng=RNG)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 4)))).numpy()
        np.testing.assert_allclose(zero_out, 0.0)

    def test_weight_grad(self):
        layer = Linear(3, 2, rng=RNG)
        x = RNG.normal(size=(4, 3))

        def loss_of_weight(w):
            return ((Tensor(x) @ w + layer.bias) ** 2).sum()

        check_grad(loss_of_weight, layer.weight.data)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=RNG)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.numpy()[0, 0], emb.weight.data[1])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 4, rng=RNG)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_padding_idx_zeroed(self):
        emb = Embedding(5, 4, rng=RNG, padding_idx=0)
        np.testing.assert_allclose(emb.weight.data[0], 0.0)

    def test_gradient_accumulates_per_row(self):
        emb = Embedding(5, 3, rng=RNG)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], 2.0)
        np.testing.assert_allclose(emb.weight.grad[2], 1.0)
        np.testing.assert_allclose(emb.weight.grad[0], 0.0)


class TestLayerNorm:
    def test_normalises(self):
        norm = LayerNorm(8)
        out = norm(Tensor(RNG.normal(size=(4, 8)) * 10 + 3)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)

    def test_grad(self):
        norm = LayerNorm(5)
        check_grad(lambda t: (norm(t) ** 2).sum(), RNG.normal(size=(3, 5)))


class TestDropout:
    def test_eval_mode_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = Tensor(RNG.normal(size=(4, 4)))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_train_mode_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.train()
        x = Tensor(np.ones((100, 100)))
        out = drop(x).numpy()
        values = np.unique(np.round(out, 6))
        assert set(values) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.05  # inverted dropout keeps expectation

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestMlp:
    def test_forward_shape(self):
        mlp = Mlp([4, 8, 3], rng=RNG)
        assert mlp(Tensor(RNG.normal(size=(5, 4)))).shape == (5, 3)

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            Mlp([4])

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Mlp([2, 2], activation="swish")


class TestModuleMechanics:
    def test_named_parameters_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.bias = Parameter(np.zeros(2))

        names = dict(Outer().named_parameters())
        assert set(names) == {"inner.w", "bias"}

    def test_state_dict_roundtrip(self):
        layer = Linear(3, 3, rng=RNG)
        other = Linear(3, 3, rng=np.random.default_rng(999))
        other.load_state_dict(layer.state_dict())
        np.testing.assert_allclose(other.weight.data, layer.weight.data)

    def test_state_dict_mismatch_raises(self):
        layer = Linear(3, 3, rng=RNG)
        state = layer.state_dict()
        state.pop("bias")
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        layer = Linear(3, 3, rng=RNG)
        state = layer.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_train_eval_propagates(self):
        seq = Sequential([Linear(2, 2, rng=RNG), Dropout(0.5)])
        seq.eval()
        assert not seq[1].training
        seq.train()
        assert seq[1].training

    def test_module_list_parameters(self):
        ml = ModuleList([Linear(2, 2, rng=RNG), Linear(2, 2, rng=RNG)])
        assert len(dict(ml.named_parameters())) == 4

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=RNG)
        (layer(Tensor(np.ones((1, 2)))).sum()).backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self):
        layer = Linear(3, 4, rng=RNG)
        assert layer.num_parameters() == 3 * 4 + 4


class TestInit:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= limit)

    def test_default_rng_deterministic(self):
        a = init.default_rng().normal(size=5)
        b = init.default_rng().normal(size=5)
        np.testing.assert_allclose(a, b)
