"""Batched CRF kernels vs the per-sequence reference loop.

The vectorised forward algorithm and Viterbi decode in ``repro.nn.crf`` must
be indistinguishable from running each sequence through the textbook
single-sequence recursions — including ragged batches with length-1
sequences.  The reference implementations here are deliberately the naive
per-sequence loops the kernels replaced.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import LinearChainCrf, Tensor
from repro.nn.crf import _fused_log_partition, _lse

RNG = np.random.default_rng(77)


def reference_log_partition(crf, scores, length):
    """Single-sequence forward algorithm (the pre-vectorisation loop)."""
    alpha = crf.start_scores.data + scores[0]
    for t in range(1, length):
        alpha = _lse(alpha[:, None] + crf.transitions.data, axis=0) + scores[t]
    return _lse(alpha + crf.end_scores.data, axis=0)


def reference_viterbi(crf, scores, length):
    """Single-sequence Viterbi (the pre-vectorisation loop)."""
    num_tags = crf.num_tags
    viterbi = np.empty((length, num_tags))
    pointers = np.empty((length, num_tags), dtype=np.int64)
    viterbi[0] = crf.start_scores.data + scores[0]
    for t in range(1, length):
        candidate = viterbi[t - 1][:, None] + crf.transitions.data
        pointers[t] = candidate.argmax(axis=0)
        viterbi[t] = candidate.max(axis=0) + scores[t]
    viterbi[length - 1] += crf.end_scores.data
    best = int(viterbi[length - 1].argmax())
    path = [best]
    for t in range(length - 1, 0, -1):
        best = int(pointers[t, best])
        path.append(best)
    path.reverse()
    return path


def prefix_mask(lengths, seq):
    return (np.arange(seq)[None, :] < np.asarray(lengths)[:, None]).astype(
        np.float64
    )


RAGGED_CASES = [
    [4, 4, 4],          # rectangular
    [5, 3, 1],          # ragged with a length-1 sequence
    [1, 1],             # all length-1
    [7],                # single sequence
    [2, 6, 1, 4, 3],    # mixed
]


class TestBatchedForward:
    @pytest.mark.parametrize("lengths", RAGGED_CASES)
    def test_log_partition_matches_per_sequence(self, lengths):
        crf = LinearChainCrf(4, rng=np.random.default_rng(40))
        seq = max(lengths)
        emissions = RNG.normal(size=(len(lengths), seq, 4))
        mask = prefix_mask(lengths, seq)
        log_z = crf._partition(Tensor(emissions), mask).numpy()
        for b, length in enumerate(lengths):
            assert log_z[b] == pytest.approx(
                reference_log_partition(crf, emissions[b], length), abs=1e-10
            )

    @pytest.mark.parametrize("lengths", RAGGED_CASES)
    def test_gradients_match_per_sequence_calls(self, lengths):
        """Batched backward == sum of independent per-sequence backwards."""
        crf = LinearChainCrf(3, rng=np.random.default_rng(41))
        seq = max(lengths)
        emissions = RNG.normal(size=(len(lengths), seq, 3))

        def grads_of(run):
            crf.zero_grad()
            out = run()
            out.sum().backward()
            return (
                crf.transitions.grad.copy(),
                crf.start_scores.grad.copy(),
                crf.end_scores.grad.copy(),
            )

        def batched():
            return _fused_log_partition(
                Tensor(emissions), crf.transitions, crf.start_scores,
                crf.end_scores, np.asarray(lengths),
            )

        batched_grads = grads_of(batched)

        crf.zero_grad()
        emission_grads = np.zeros_like(emissions)
        for b, length in enumerate(lengths):
            single = Tensor(emissions[b : b + 1, :length], requires_grad=True)
            _fused_log_partition(
                single, crf.transitions, crf.start_scores,
                crf.end_scores, np.asarray([length]),
            ).sum().backward()
            emission_grads[b, :length] = single.grad[0]
        per_sequence_grads = (
            crf.transitions.grad.copy(),
            crf.start_scores.grad.copy(),
            crf.end_scores.grad.copy(),
        )

        for got, want in zip(batched_grads, per_sequence_grads):
            np.testing.assert_allclose(got, want, atol=1e-10)

        crf.zero_grad()
        batched_emissions = Tensor(emissions, requires_grad=True)
        _fused_log_partition(
            batched_emissions, crf.transitions, crf.start_scores,
            crf.end_scores, np.asarray(lengths),
        ).sum().backward()
        np.testing.assert_allclose(
            batched_emissions.grad, emission_grads, atol=1e-10
        )


class TestBatchedViterbi:
    @pytest.mark.parametrize("lengths", RAGGED_CASES)
    def test_decode_matches_per_sequence_loop(self, lengths):
        crf = LinearChainCrf(4, rng=np.random.default_rng(42))
        seq = max(lengths)
        emissions = RNG.normal(size=(len(lengths), seq, 4)) * 2
        mask = prefix_mask(lengths, seq)
        decoded = crf.decode(Tensor(emissions), mask)
        for b, length in enumerate(lengths):
            assert decoded[b] == reference_viterbi(crf, emissions[b], length)

    @given(
        lengths=st.lists(st.integers(1, 7), min_size=1, max_size=6),
        num_tags=st.integers(2, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_batched_equals_reference(self, lengths, num_tags, seed):
        rng = np.random.default_rng(seed)
        crf = LinearChainCrf(num_tags, rng=rng)
        seq = max(lengths)
        emissions = rng.normal(size=(len(lengths), seq, num_tags))
        mask = prefix_mask(lengths, seq)

        decoded = crf.decode(Tensor(emissions), mask)
        log_z = crf._partition(Tensor(emissions), mask).numpy()
        for b, length in enumerate(lengths):
            assert decoded[b] == reference_viterbi(crf, emissions[b], length)
            assert log_z[b] == pytest.approx(
                reference_log_partition(crf, emissions[b], length), abs=1e-10
            )
