"""Tests for LSTM layers."""

import numpy as np
import pytest

from repro.nn import Adam, BiLstm, Lstm, LstmCell, ParamGroup, Tensor
from repro.nn import functional as F

RNG = np.random.default_rng(13)


class TestLstmCell:
    def test_step_shapes(self):
        cell = LstmCell(4, 6, rng=np.random.default_rng(1))
        h = Tensor(np.zeros((3, 6)))
        c = Tensor(np.zeros((3, 6)))
        h2, c2 = cell(Tensor(RNG.normal(size=(3, 4))), (h, c))
        assert h2.shape == (3, 6)
        assert c2.shape == (3, 6)

    def test_forget_bias_initialised_to_one(self):
        cell = LstmCell(4, 6, rng=np.random.default_rng(1))
        np.testing.assert_allclose(cell.bias.data[6:12], 1.0)

    def test_hidden_bounded_by_tanh(self):
        cell = LstmCell(4, 6, rng=np.random.default_rng(1))
        h = Tensor(np.zeros((2, 6)))
        c = Tensor(np.zeros((2, 6)))
        for _ in range(5):
            h, c = cell(Tensor(RNG.normal(size=(2, 4)) * 10), (h, c))
        assert np.all(np.abs(h.numpy()) <= 1.0)


class TestLstm:
    def test_output_shape(self):
        lstm = Lstm(4, 6, rng=np.random.default_rng(2))
        out = lstm(Tensor(RNG.normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 6)

    def test_reverse_direction_sees_future(self):
        lstm = Lstm(2, 4, reverse=True, rng=np.random.default_rng(3))
        lstm.eval()
        x = RNG.normal(size=(1, 5, 2))
        base = lstm(Tensor(x)).numpy()
        # Changing the last step must change the FIRST output of a reversed LSTM.
        perturbed = x.copy()
        perturbed[0, 4] += 10
        out = lstm(Tensor(perturbed)).numpy()
        assert not np.allclose(base[0, 0], out[0, 0])

    def test_forward_direction_is_causal(self):
        lstm = Lstm(2, 4, rng=np.random.default_rng(3))
        lstm.eval()
        x = RNG.normal(size=(1, 5, 2))
        base = lstm(Tensor(x)).numpy()
        perturbed = x.copy()
        perturbed[0, 4] += 10
        out = lstm(Tensor(perturbed)).numpy()
        np.testing.assert_allclose(base[0, :4], out[0, :4], atol=1e-10)


class TestFusedStepAgainstReference:
    """The fused per-timestep gate op must match the compositional step."""

    def test_outputs_and_gradients_match(self):
        from repro.nn import fused_lstm_step

        cell = LstmCell(3, 5, rng=np.random.default_rng(21))
        x0 = RNG.normal(size=(4, 3))
        h0 = RNG.normal(size=(4, 5))
        c0 = RNG.normal(size=(4, 5))
        wh = RNG.normal(size=(4, 5))
        wc = RNG.normal(size=(4, 5))

        def run(step):
            cell.zero_grad()
            x = Tensor(x0.copy(), requires_grad=True)
            h_prev = Tensor(h0.copy(), requires_grad=True)
            c_prev = Tensor(c0.copy(), requires_grad=True)
            h, c = step(x, h_prev, c_prev)
            ((h * Tensor(wh)).sum() + (c * Tensor(wc)).sum()).backward()
            return (
                h.numpy().copy(),
                c.numpy().copy(),
                x.grad.copy(),
                h_prev.grad.copy(),
                c_prev.grad.copy(),
                cell.weight.grad.copy(),
                cell.bias.grad.copy(),
            )

        fused = run(
            lambda x, h, c: fused_lstm_step(x, h, c, cell.weight, cell.bias)
        )
        reference = run(lambda x, h, c: cell._step_reference(x, (h, c)))
        for f, r in zip(fused, reference):
            np.testing.assert_allclose(f, r, atol=1e-9)


class TestFusedBpttAgainstReference:
    """The fused BPTT must match the compositional autograd recurrence."""

    @pytest.mark.parametrize("reverse", [False, True])
    def test_outputs_and_gradients_match(self, reverse):
        lstm = Lstm(3, 5, reverse=reverse, rng=np.random.default_rng(9))
        base = RNG.normal(size=(2, 7, 3))
        weights = RNG.normal(size=(2, 7, 5))

        def run(fn):
            lstm.zero_grad()
            x = Tensor(base.copy(), requires_grad=True)
            out = fn(x)
            (out * Tensor(weights)).sum().backward()
            return (
                out.numpy().copy(),
                x.grad.copy(),
                lstm.cell.weight.grad.copy(),
                lstm.cell.bias.grad.copy(),
            )

        fused = run(lstm._forward_train_fused)
        reference = run(lstm._forward_train_reference)
        for f, r in zip(fused, reference):
            np.testing.assert_allclose(f, r, atol=1e-9)

    def test_inference_matches_training_forward(self):
        from repro.nn import no_grad

        lstm = Lstm(2, 4, rng=np.random.default_rng(10))
        x = RNG.normal(size=(3, 6, 2))
        train_out = lstm(Tensor(x)).numpy()
        with no_grad():
            infer_out = lstm(Tensor(x)).numpy()
        np.testing.assert_allclose(train_out, infer_out, atol=1e-12)


class TestBiLstm:
    def test_concat_dim(self):
        bi = BiLstm(4, 5, rng=np.random.default_rng(4))
        out = bi(Tensor(RNG.normal(size=(2, 6, 4))))
        assert out.shape == (2, 6, 10)
        assert bi.output_dim == 10

    def test_gradients_reach_both_directions(self):
        bi = BiLstm(3, 4, rng=np.random.default_rng(5))
        out = bi(Tensor(RNG.normal(size=(1, 4, 3))))
        out.sum().backward()
        assert bi.forward_lstm.cell.weight.grad is not None
        assert bi.backward_lstm.cell.weight.grad is not None

    def test_can_learn_sequence_task(self):
        # Predict whether any earlier element was positive - needs memory.
        rng = np.random.default_rng(6)
        x = rng.normal(size=(16, 6, 1))
        labels = (np.cumsum(x[..., 0] > 1.0, axis=1) > 0).astype(np.int64)
        bi = BiLstm(1, 8, rng=np.random.default_rng(7))
        from repro.nn import Linear

        head = Linear(16, 2, rng=np.random.default_rng(8))
        params = bi.parameters() + head.parameters()
        opt = Adam([ParamGroup(params, 3e-2)])
        losses = []
        for _ in range(40):
            opt.zero_grad()
            logits = head(bi(Tensor(x)))
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.5
