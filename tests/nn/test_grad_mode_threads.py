"""``no_grad()`` must be context-local, not process-global.

Batched serving runs inference on worker threads while a training loop may
be live elsewhere; a module-global flag would let one thread's ``no_grad()``
silently disable gradient recording for every other thread.
"""

import threading

import numpy as np

from repro.nn import Tensor, is_grad_enabled, no_grad


def test_no_grad_is_isolated_between_threads():
    # Thread A holds no_grad() open across the point where thread B builds
    # and backprops a graph; B must be unaffected.
    entered_no_grad = threading.Event()
    training_done = threading.Event()
    results = {}

    def inference_thread():
        with no_grad():
            entered_no_grad.set()
            assert training_done.wait(timeout=30)
            x = Tensor(np.ones(3), requires_grad=True)
            results["inference_mode"] = is_grad_enabled()
            results["inference_requires_grad"] = (x * 2.0).requires_grad

    def training_thread():
        assert entered_no_grad.wait(timeout=30)
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 3.0).sum()
        results["training_mode"] = is_grad_enabled()
        results["training_requires_grad"] = y.requires_grad
        y.backward()
        results["training_grad"] = None if x.grad is None else x.grad.copy()
        training_done.set()

    threads = [
        threading.Thread(target=inference_thread),
        threading.Thread(target=training_thread),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads)

    assert results["training_mode"] is True
    assert results["training_requires_grad"] is True
    np.testing.assert_allclose(results["training_grad"], 3.0)
    assert results["inference_mode"] is False
    assert results["inference_requires_grad"] is False


def test_no_grad_nesting_restores_state():
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()
