"""Tests for the int8 post-training quantization kernels."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Module,
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoder,
    no_grad,
)
from repro.nn import quantize as q

RNG = np.random.default_rng(11)


def make_linear(in_dim=16, out_dim=8, rng_seed=1):
    return Linear(in_dim, out_dim, rng=np.random.default_rng(rng_seed))


class TestQuantizedLinear:
    def test_close_to_float_reference(self):
        linear = make_linear()
        layer = q.QuantizedLinear(linear)
        x = RNG.normal(size=(12, 16))
        expected = linear.infer(x)
        got = layer.infer(x)
        assert got.dtype == np.float32
        # int8 grids on weights and activations: ~1% relative error budget.
        scale = np.abs(expected).max()
        np.testing.assert_allclose(got, expected, atol=0.05 * scale)

    def test_per_channel_weight_scales(self):
        linear = make_linear()
        # Give one output channel a much larger range than the rest; a
        # per-tensor scheme would crush the small channels' precision.
        with no_grad():
            linear.weight.data[:, 0] *= 100.0
        layer = q.QuantizedLinear(linear)
        assert layer.weight_scale.shape == (8,)
        assert layer.weight_scale[0] > 10 * layer.weight_scale[1:].max()
        x = RNG.normal(size=(4, 16))
        expected = linear.infer(x)
        got = layer.infer(x)
        small = expected[:, 1:]
        np.testing.assert_allclose(
            got[:, 1:], small, atol=0.05 * np.abs(small).max()
        )

    def test_weights_stay_in_int8_grid(self):
        layer = q.QuantizedLinear(make_linear())
        assert layer.weight_q.dtype == np.int8
        staged = layer.weight_f32
        assert np.array_equal(staged, np.rint(staged))
        assert np.abs(staged).max() <= 127.0
        assert np.array_equal(staged, layer.weight_q.astype(np.float32))

    def test_calibration_freezes_activation_scale(self):
        layer = q.QuantizedLinear(make_linear())
        assert layer.act_amax is None
        wrapper = Module()
        wrapper.layer = layer
        big = np.full((2, 16), 3.0)
        with q.calibration(wrapper):
            layer.infer(big)
            layer.infer(np.full((2, 16), 1.0))
        assert layer.act_amax == pytest.approx(3.0)
        # Frozen scale: results no longer depend on the batch's own max.
        x = RNG.normal(size=(5, 16))
        alone = layer.infer(x)
        stacked = layer.infer(np.concatenate([x, 50.0 * x], axis=0))[:5]
        np.testing.assert_array_equal(alone, stacked)

    def test_dynamic_scale_without_calibration(self):
        layer = q.QuantizedLinear(make_linear())
        x = RNG.normal(size=(5, 16))
        assert layer.act_scale(x.astype(np.float32)) == pytest.approx(
            np.abs(x.astype(np.float32)).max() / 127.0
        )

    def test_forward_raises_under_grad(self):
        layer = q.QuantizedLinear(make_linear())
        with pytest.raises(RuntimeError, match="inference-only"):
            layer(Tensor(RNG.normal(size=(2, 16)), requires_grad=True))
        with no_grad():
            out = layer(Tensor(RNG.normal(size=(2, 16))))
        assert out.shape == (2, 8)

    def test_quantize_activations_rounds_and_clips(self):
        x = np.array([0.0, 0.4, -0.6, 200.0, -200.0], dtype=np.float32)
        grid = q.quantize_activations(x, 1.0)
        np.testing.assert_array_equal(grid, [0.0, 0.0, -1.0, 127.0, -127.0])


class TestModelSwap:
    def _model(self):
        model = Module()
        model.first = make_linear(rng_seed=2)
        model.second = make_linear(rng_seed=3)
        return model

    def test_swap_and_undo_roundtrip(self):
        model = self._model()
        original = (model.first, model.second)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        assert q.quantize_model(model) == 2
        assert all(
            isinstance(m, q.QuantizedLinear) for m in (model.first, model.second)
        )
        # The wrapper is transparent to state_dict.
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[key])
        assert q.dequantize(model) == 2
        assert (model.first, model.second) == original

    def test_quantize_is_idempotent(self):
        model = self._model()
        assert q.quantize_model(model) == 2
        assert q.quantize_model(model) == 0

    def test_encoder_dtype_flips(self):
        encoder = TransformerEncoder(1, 16, 2, dropout=0.0)
        q.quantize_model(encoder)
        assert encoder.inference_dtype == np.float32
        q.dequantize(encoder)
        assert encoder.inference_dtype == np.float64

    def test_report_counts_layers(self):
        model = self._model()
        q.quantize_model(model)
        report = q.quantization_report(model)
        assert report["quantize.layers"] == 2.0
        assert report["quantize.calibrated_layers"] == 0.0
        with q.calibration(model):
            model.first.infer(RNG.normal(size=(2, 16)))
        assert q.quantization_report(model)["quantize.calibrated_layers"] == 1.0

    def test_set_fused_inference_toggles_stacks(self):
        encoder = TransformerEncoder(2, 16, 2, dropout=0.0)
        q.set_fused_inference(encoder, False)
        assert encoder.fused_inference is False
        q.set_fused_inference(encoder, True)
        assert encoder.fused_inference is True


class TestStackedQkv:
    def test_matches_three_separate_quantized_calls(self):
        attn = MultiHeadSelfAttention(16, 4, dropout=0.0, rng=np.random.default_rng(4))
        attn.eval()
        q.quantize_model(attn)
        x = RNG.normal(size=(3, 5, 16)).astype(np.float32)
        stacked = attn._quantized_qkv(x)
        assert stacked is not None
        np.testing.assert_array_equal(stacked[..., :16], attn.query.infer(x))
        np.testing.assert_array_equal(stacked[..., 16:32], attn.key.infer(x))
        np.testing.assert_array_equal(stacked[..., 32:], attn.value.infer(x))

    def test_cache_invalidates_on_layer_swap(self):
        attn = MultiHeadSelfAttention(16, 4, dropout=0.0, rng=np.random.default_rng(4))
        attn.eval()
        q.quantize_model(attn)
        x = RNG.normal(size=(2, 3, 16)).astype(np.float32)
        first = attn._quantized_qkv(x)
        # Re-quantizing after dequantize builds new QuantizedLinear objects;
        # the stacked weights must follow them, not the cached originals.
        q.dequantize(attn)
        attn.query.weight.data = attn.query.weight.data * 2.0
        q.quantize_model(attn)
        second = attn._quantized_qkv(x)
        assert not np.array_equal(first[..., :16], second[..., :16])
        np.testing.assert_array_equal(second[..., :16], attn.query.infer(x))
