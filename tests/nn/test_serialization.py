"""Tests for state-dict serialization."""

import numpy as np

from repro.nn import Linear, load_module, load_state, save_module, save_state


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        state = {"a": np.arange(6.0).reshape(2, 3), "b.c": np.ones(4)}
        path = str(tmp_path / "state.npz")
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b.c"}
        np.testing.assert_allclose(loaded["a"], state["a"])

    def test_module_roundtrip(self, tmp_path):
        layer = Linear(3, 4, rng=np.random.default_rng(1))
        path = str(tmp_path / "model.npz")
        save_module(layer, path)

        fresh = Linear(3, 4, rng=np.random.default_rng(2))
        assert not np.allclose(fresh.weight.data, layer.weight.data)
        load_module(fresh, path)
        np.testing.assert_allclose(fresh.weight.data, layer.weight.data)
        np.testing.assert_allclose(fresh.bias.data, layer.bias.data)

    def test_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "model.npz")
        save_state({"x": np.ones(2)}, path)
        assert load_state(path)["x"].shape == (2,)
