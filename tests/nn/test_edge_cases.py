"""Edge-case coverage for the nn substrate."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Linear,
    Mlp,
    Module,
    Parameter,
    Sequential,
    Tensor,
    concat,
    no_grad,
    stack,
)
from repro.nn import functional as F

RNG = np.random.default_rng(77)


class TestModuleExtras:
    def test_copy_from(self):
        a = Linear(3, 3, rng=np.random.default_rng(1))
        b = Linear(3, 3, rng=np.random.default_rng(2))
        b.copy_from(a)
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        # Copies, not aliases.
        with no_grad():
            b.weight.data += 1.0
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_sequential_forward(self):
        seq = Sequential(
            [Linear(4, 8, rng=RNG), Linear(8, 2, rng=RNG)]
        )
        out = seq(Tensor(RNG.normal(size=(5, 4))))
        assert out.shape == (5, 2)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_nested_module_list_in_module(self):
        from repro.nn import ModuleList

        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.items = ModuleList([Linear(2, 2, rng=RNG)])
                self.free = Parameter(np.zeros(1))

        names = dict(Holder().named_parameters())
        assert "items.0.weight" in names
        assert "free" in names


class TestMlpActivations:
    @pytest.mark.parametrize("activation", ["gelu", "tanh", "relu"])
    def test_activations_run(self, activation):
        mlp = Mlp([3, 5, 2], rng=RNG, activation=activation)
        out = mlp(Tensor(RNG.normal(size=(4, 3))))
        assert out.shape == (4, 2)
        out.sum().backward()
        assert mlp.layers[0].weight.grad is not None


class TestTensorEdges:
    def test_concat_three_tensors(self):
        parts = [Tensor(np.ones((2, i)), requires_grad=True) for i in (1, 2, 3)]
        merged = concat(parts, axis=1)
        assert merged.shape == (2, 6)
        merged.sum().backward()
        for part in parts:
            np.testing.assert_allclose(part.grad, 1.0)

    def test_stack_negative_like_axis(self):
        parts = [Tensor(np.ones(3), requires_grad=True) for _ in range(2)]
        merged = stack(parts, axis=0)
        assert merged.shape == (2, 3)
        merged.sum().backward()
        np.testing.assert_allclose(parts[0].grad, 1.0)

    def test_scalar_arithmetic_chain(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        y = ((x * 3 - 1) / 5 + 2) ** 2
        y.backward()
        # y = ((3x-1)/5 + 2)^2 ; dy/dx = 2*((3x-1)/5+2) * 3/5
        expected = 2 * ((3 * 2 - 1) / 5 + 2) * 3 / 5
        assert float(x.grad) == pytest.approx(expected)

    def test_len_and_item(self):
        t = Tensor(np.zeros((4, 2)))
        assert len(t) == 4
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(1), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.ones(1)))

    def test_comparison_operators_return_arrays(self):
        a = Tensor(np.array([1.0, 3.0]))
        assert (a > 2.0).tolist() == [False, True]
        assert (a <= 3.0).all()

    def test_no_grad_inference_matches_training_math(self):
        layer = Linear(4, 4, rng=np.random.default_rng(3))
        x = Tensor(RNG.normal(size=(2, 4)))
        with no_grad():
            inference = layer(x).numpy()
        training = layer(x).numpy()
        np.testing.assert_allclose(inference, training)


class TestFunctionalEdges:
    def test_nll_loss_unmasked_mean(self):
        logp = F.log_softmax(Tensor(RNG.normal(size=(3, 4))))
        loss = F.nll_loss(logp, np.array([0, 1, 2]))
        assert float(loss.data) > 0

    def test_softmax_axis_zero(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        probs = F.softmax(x, axis=0).numpy()
        np.testing.assert_allclose(probs.sum(axis=0), 1.0, atol=1e-12)

    def test_logsumexp_positive_axis(self):
        from scipy.special import logsumexp as scipy_lse

        x = RNG.normal(size=(2, 3, 4))
        out = F.logsumexp(Tensor(x), axis=1).numpy()
        np.testing.assert_allclose(out, scipy_lse(x, axis=1), atol=1e-10)


class TestDropoutDeterminism:
    def test_seeded_dropout_reproducible(self):
        a = Dropout(0.5, rng=np.random.default_rng(5))
        b = Dropout(0.5, rng=np.random.default_rng(5))
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())
