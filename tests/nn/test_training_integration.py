"""End-to-end learning checks for the nn substrate.

These verify the pieces train *together*: a Transformer classifier fits a
synthetic pattern, BiLSTM+CRF fits a segmentation task, and training is
robust to exploding-gradient batches when clipping is on.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AdamW,
    BiLstm,
    Embedding,
    LinearChainCrf,
    Linear,
    LinearWarmupSchedule,
    Module,
    ParamGroup,
    Tensor,
    TransformerEncoder,
    clip_grad_norm,
)
from repro.nn import functional as F


class _TinyClassifier(Module):
    def __init__(self, vocab, dim, classes, rng):
        super().__init__()
        self.embed = Embedding(vocab, dim, rng=rng)
        self.encoder = TransformerEncoder(1, dim, 2, dropout=0.0, rng=rng)
        self.head = Linear(dim, classes, rng=rng)

    def forward(self, ids):
        states = self.encoder(self.embed(ids))
        return self.head(states.mean(axis=1))


class TestTransformerLearning:
    def test_learns_bag_of_tokens_rule(self):
        # Class = whether token 7 appears anywhere in the sequence.
        rng = np.random.default_rng(0)
        x = rng.integers(0, 10, size=(64, 6))
        y = (x == 7).any(axis=1).astype(np.int64)
        model = _TinyClassifier(10, 16, 2, np.random.default_rng(1))
        optimizer = Adam([ParamGroup(model.parameters(), 5e-3)])
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(x), y)
            loss.backward()
            optimizer.step()
        predictions = model(x).numpy().argmax(axis=1)
        assert (predictions == y).mean() > 0.9

    def test_learns_positional_rule(self):
        # Class = identity of the FIRST token: needs position information.
        rng = np.random.default_rng(2)
        x = rng.integers(0, 4, size=(48, 5))
        y = x[:, 0].astype(np.int64)

        class PositionalClassifier(Module):
            def __init__(self):
                super().__init__()
                from repro.core.embeddings import TextEmbedding

                r = np.random.default_rng(3)
                self.embed = TextEmbedding(4, 16, max_positions=5, rng=r)
                self.encoder = TransformerEncoder(1, 16, 2, dropout=0.0, rng=r)
                self.head = Linear(16, 4, rng=r)

            def forward(self, ids):
                states = self.encoder(self.embed(ids, np.zeros_like(ids)))
                return self.head(states.mean(axis=1))

        model = PositionalClassifier()
        optimizer = Adam([ParamGroup(model.parameters(), 5e-3)])
        for _ in range(80):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(x), y)
            loss.backward()
            optimizer.step()
        assert (model(x).numpy().argmax(axis=1) == y).mean() > 0.8


class TestSequenceLabeling:
    def test_bilstm_crf_learns_segmentation(self):
        # Label = 1 inside a run started by token 3 and ended by token 4.
        rng = np.random.default_rng(4)
        batch, seq = 32, 10
        x = rng.integers(0, 3, size=(batch, seq))
        starts = rng.integers(0, seq - 3, size=batch)
        lengths = rng.integers(2, 4, size=batch)
        y = np.zeros((batch, seq), dtype=np.int64)
        for i in range(batch):
            x[i, starts[i]] = 3
            x[i, starts[i] + lengths[i]] = 4
            y[i, starts[i] : starts[i] + lengths[i] + 1] = 1

        rng_model = np.random.default_rng(5)
        embed = Embedding(5, 12, rng=rng_model)
        lstm = BiLstm(12, 12, rng=rng_model)
        head = Linear(24, 2, rng=rng_model)
        crf = LinearChainCrf(2, rng=rng_model)
        params = (
            embed.parameters() + lstm.parameters()
            + head.parameters() + crf.parameters()
        )
        optimizer = Adam([ParamGroup(params, 1e-2)])
        for _ in range(35):
            optimizer.zero_grad()
            emissions = head(lstm(embed(x)))
            loss = crf.neg_log_likelihood(emissions, y)
            loss.backward()
            optimizer.step()
        emissions = head(lstm(embed(x)))
        decoded = np.array(crf.decode(emissions))
        assert (decoded == y).mean() > 0.9


class TestRobustness:
    def test_clipping_stabilises_huge_gradients(self):
        rng = np.random.default_rng(6)
        layer = Linear(4, 1, rng=rng)
        optimizer = AdamW([ParamGroup(layer.parameters(), 1e-2)])
        x = Tensor(rng.normal(size=(8, 4)) * 1e4)  # adversarial batch
        target = rng.normal(size=(8, 1))
        for _ in range(10):
            optimizer.zero_grad()
            loss = F.mse_loss(layer(x), target)
            loss.backward()
            clip_grad_norm(layer.parameters(), 1.0)
            optimizer.step()
        assert np.isfinite(layer.weight.data).all()

    def test_schedule_plus_optimizer_run_to_zero_lr(self):
        layer = Linear(2, 1, rng=np.random.default_rng(7))
        optimizer = Adam([ParamGroup(layer.parameters(), 1e-2)])
        schedule = LinearWarmupSchedule(optimizer, warmup_steps=3, total_steps=10)
        x = Tensor(np.ones((4, 2)))
        for _ in range(10):
            optimizer.zero_grad()
            F.mse_loss(layer(x), np.zeros((4, 1))).backward()
            optimizer.step()
            schedule.step()
        assert optimizer.groups[0].lr == pytest.approx(0.0, abs=1e-12)
        assert np.isfinite(layer.weight.data).all()

    def test_softmax_extreme_logits_finite_loss(self):
        logits = Tensor(np.array([[1e8, -1e8, 0.0]]), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0]))
        loss.backward()
        assert np.isfinite(float(loss.data))
        assert np.isfinite(logits.grad).all()
