"""Masked (ragged-batch) LSTM must equal per-sequence runs at true lengths.

The batched inference engine pads documents to a shared sentence count; the
reverse-direction LSTM would otherwise start from the padded tail and leak
garbage state into every shorter sequence.
"""

import numpy as np
import pytest

from repro.nn import BiLstm, Lstm, Tensor, no_grad

RNG = np.random.default_rng(55)


def prefix_mask(lengths, seq):
    return (np.arange(seq)[None, :] < np.asarray(lengths)[:, None]).astype(
        np.float64
    )


@pytest.mark.parametrize("lengths", [[5, 3, 1], [4, 4], [1], [2, 6, 1, 3]])
def test_masked_inference_matches_per_sequence(lengths):
    seq = max(lengths)
    layer = BiLstm(5, 4, rng=np.random.default_rng(50))
    x = RNG.normal(size=(len(lengths), seq, 5))
    mask = prefix_mask(lengths, seq)
    with no_grad():
        batched = layer(Tensor(x), mask=mask).numpy()
        for b, length in enumerate(lengths):
            single = layer(Tensor(x[b : b + 1, :length])).numpy()
            np.testing.assert_allclose(
                batched[b, :length], single[0], atol=1e-12
            )
            # Padded rows carry exactly zero state.
            np.testing.assert_array_equal(batched[b, length:], 0.0)


@pytest.mark.parametrize("reverse", [False, True])
def test_masked_training_gradients_match_per_sequence(reverse):
    lengths = [4, 2, 1]
    seq = max(lengths)
    layer = Lstm(3, 4, reverse=reverse, rng=np.random.default_rng(51))
    x = RNG.normal(size=(len(lengths), seq, 3))
    mask = prefix_mask(lengths, seq)
    weights = RNG.normal(size=(len(lengths), seq, 4))

    def zero():
        layer.cell.weight.zero_grad()
        layer.cell.bias.zero_grad()

    zero()
    batched_x = Tensor(x, requires_grad=True)
    out = layer(batched_x, mask=mask)
    (out * Tensor(weights * mask[:, :, None])).sum().backward()
    batched = (
        batched_x.grad.copy(),
        layer.cell.weight.grad.copy(),
        layer.cell.bias.grad.copy(),
    )

    zero()
    grad_x = np.zeros_like(x)
    for b, length in enumerate(lengths):
        single_x = Tensor(x[b : b + 1, :length], requires_grad=True)
        out = layer(single_x)
        (out * Tensor(weights[b : b + 1, :length])).sum().backward()
        grad_x[b, :length] = single_x.grad[0]
    np.testing.assert_allclose(batched[0], grad_x, atol=1e-10)
    np.testing.assert_allclose(batched[1], layer.cell.weight.grad, atol=1e-10)
    np.testing.assert_allclose(batched[2], layer.cell.bias.grad, atol=1e-10)


def test_unmasked_path_unchanged_against_reference():
    # The GEMM-hoisted kernel must still match the compositional recurrence.
    layer = Lstm(4, 3, rng=np.random.default_rng(52))
    x = Tensor(RNG.normal(size=(2, 6, 4)), requires_grad=True)
    fused = layer._forward_train_fused(x)
    reference = layer._forward_train_reference(x)
    np.testing.assert_allclose(fused.numpy(), reference.numpy(), atol=1e-12)
