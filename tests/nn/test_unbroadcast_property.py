"""_unbroadcast edge cases, property-checked against an einsum reference.

``_unbroadcast`` is the single function every broadcastable backward
closure relies on; a shape bug there corrupts gradients everywhere.  The
reference implementation here reduces through a completely independent
path — an einsum contraction that drops broadcast axes — so the two can
only agree if both are right.
"""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import _unbroadcast


def einsum_reference(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` via an einsum contraction."""
    extra = grad.ndim - len(shape)
    labels = string.ascii_lowercase[: grad.ndim]
    kept = [
        labels[extra + i]
        for i, size in enumerate(shape)
        if not (size == 1 and grad.shape[extra + i] != 1)
    ]
    reduced = np.einsum(f"{labels}->{''.join(kept)}", grad)
    return reduced.reshape(shape)


@st.composite
def broadcast_pairs(draw):
    """A target shape plus a gradient legally broadcast *up* from it."""
    shape = tuple(draw(st.lists(st.integers(0, 4), max_size=3)))
    extra = tuple(draw(st.lists(st.integers(0, 3), max_size=2)))
    grad_shape = extra + tuple(
        draw(st.integers(0, 4)) if size == 1 else size for size in shape
    )
    seed = draw(st.integers(0, 2**16))
    grad = np.random.default_rng(seed).standard_normal(grad_shape)
    return grad, shape


@settings(max_examples=100, deadline=None)
@given(broadcast_pairs())
def test_matches_einsum_reference(pair):
    grad, shape = pair
    result = _unbroadcast(grad, shape)
    assert result.shape == shape
    np.testing.assert_allclose(result, einsum_reference(grad, shape), atol=1e-12)


class TestEdgeCases:
    def test_scalar_to_ndim(self):
        grad = np.arange(12.0).reshape(3, 4)
        result = _unbroadcast(grad, ())
        assert result.shape == ()
        assert result == grad.sum()

    def test_zero_size_axis_preserved(self):
        grad = np.zeros((2, 0, 3))
        result = _unbroadcast(grad, (0, 3))
        assert result.shape == (0, 3)

    def test_size_one_axis_broadcast_to_zero(self):
        # (1, 3) broadcast against a (0, 3) operand: the gradient coming
        # back is empty; the sum over the empty axis must be exact zeros.
        grad = np.zeros((0, 3))
        result = _unbroadcast(grad, (1, 3))
        assert result.shape == (1, 3)
        np.testing.assert_array_equal(result, np.zeros((1, 3)))

    def test_keepdims_interaction(self):
        # Interior size-1 axes reduce with keepdims and must land back in
        # place, not collapse: (2, 1, 3) from (2, 5, 3).
        grad = np.arange(30.0).reshape(2, 5, 3)
        result = _unbroadcast(grad, (2, 1, 3))
        np.testing.assert_allclose(result, grad.sum(axis=1, keepdims=True))

    def test_prepended_and_interior_axes_together(self):
        grad = np.arange(24.0).reshape(2, 3, 4)
        result = _unbroadcast(grad, (3, 1))
        np.testing.assert_allclose(
            result, grad.sum(axis=(0, 2))[:, None]
        )

    def test_identity_when_shapes_match(self):
        grad = np.arange(6.0).reshape(2, 3)
        assert _unbroadcast(grad, (2, 3)) is grad
