"""Unit and property tests for the autograd tensor engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, concat, no_grad, stack, where
from repro.nn.tensor import _unbroadcast

from ..helpers import check_grad

RNG = np.random.default_rng(42)


class TestBasicOps:
    def test_add_backward(self):
        check_grad(lambda t: (t + 3.0).sum(), RNG.normal(size=(3, 4)))

    def test_add_broadcast_backward(self):
        bias = RNG.normal(size=(4,))
        check_grad(lambda t: (t + Tensor(bias)).sum(), RNG.normal(size=(3, 4)))

    def test_mul_backward(self):
        other = RNG.normal(size=(3, 4))
        check_grad(lambda t: (t * Tensor(other)).sum(), RNG.normal(size=(3, 4)))

    def test_div_backward(self):
        denom = RNG.normal(size=(3, 4)) + 3.0
        check_grad(lambda t: (t / Tensor(denom)).sum(), RNG.normal(size=(3, 4)))

    def test_div_denominator_grad(self):
        numer = RNG.normal(size=(3, 4))
        check_grad(
            lambda t: (Tensor(numer) / t).sum(), RNG.normal(size=(3, 4)) + 3.0
        )

    def test_pow_backward(self):
        check_grad(lambda t: (t**3).sum(), RNG.normal(size=(3, 4)))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_backward_2d(self):
        other = RNG.normal(size=(4, 5))
        check_grad(lambda t: (t @ Tensor(other)).sum(), RNG.normal(size=(3, 4)))

    def test_matmul_backward_rhs(self):
        lhs = RNG.normal(size=(3, 4))
        check_grad(lambda t: (Tensor(lhs) @ t).sum(), RNG.normal(size=(4, 5)))

    def test_matmul_batched(self):
        other = RNG.normal(size=(2, 4, 5))
        check_grad(
            lambda t: (t @ Tensor(other)).sum(), RNG.normal(size=(2, 3, 4))
        )

    def test_matmul_broadcast_batch(self):
        # (2,3,4) @ (4,5): rhs broadcast across batch.
        rhs = RNG.normal(size=(4, 5))
        check_grad(lambda t: (t @ Tensor(rhs)).sum(), RNG.normal(size=(2, 3, 4)))
        lhs = RNG.normal(size=(2, 3, 4))
        check_grad(lambda t: (Tensor(lhs) @ t).sum(), rhs)

    def test_neg_sub(self):
        other = RNG.normal(size=(3,))
        check_grad(lambda t: (Tensor(other) - t).sum(), RNG.normal(size=(3,)))


class TestElementwise:
    @pytest.mark.parametrize(
        "name", ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt", "log"]
    )
    def test_unary_backward(self, name):
        base = RNG.normal(size=(4, 3))
        if name in ("sqrt", "log"):
            base = np.abs(base) + 0.5
        if name in ("relu", "abs"):
            base = base + np.sign(base) * 0.05  # keep away from the kink
        check_grad(lambda t: getattr(t, name)().sum(), base)

    def test_clip_backward(self):
        base = RNG.normal(size=(10,)) * 3
        base = base[np.abs(np.abs(base) - 1.0) > 0.05]
        check_grad(lambda t: t.clip(-1.0, 1.0).sum(), base)


class TestReductions:
    def test_sum_axis(self):
        check_grad(lambda t: t.sum(axis=0).sum(), RNG.normal(size=(3, 4)))
        check_grad(
            lambda t: t.sum(axis=1, keepdims=True).sum(), RNG.normal(size=(3, 4))
        )

    def test_mean(self):
        check_grad(lambda t: t.mean(), RNG.normal(size=(3, 4)))
        check_grad(lambda t: t.mean(axis=-1).sum(), RNG.normal(size=(3, 4)))

    def test_max(self):
        base = RNG.normal(size=(3, 4))
        check_grad(lambda t: t.max(axis=1).sum(), base)

    def test_max_tie_splits_gradient(self):
        x = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestShape:
    def test_reshape(self):
        check_grad(lambda t: (t.reshape(6, 2) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_transpose(self):
        w = RNG.normal(size=(3, 5))
        check_grad(
            lambda t: (t.transpose(1, 0) @ Tensor(w)).sum(), RNG.normal(size=(3, 4))
        )

    def test_swapaxes(self):
        check_grad(
            lambda t: (t.swapaxes(0, 2) ** 2).sum(), RNG.normal(size=(2, 3, 4))
        )

    def test_getitem_slice(self):
        check_grad(lambda t: (t[1:, :2] ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_grad(lambda t: (t[idx] ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_getitem_repeated_rows_accumulate(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        x[np.array([1, 1])].sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0], [2, 2], [0, 0]])

    def test_concat(self):
        b = RNG.normal(size=(3, 2))
        check_grad(
            lambda t: (concat([t, Tensor(b)], axis=1) ** 2).sum(),
            RNG.normal(size=(3, 4)),
        )

    def test_stack(self):
        b = RNG.normal(size=(3, 4))
        check_grad(
            lambda t: (stack([t, Tensor(b)], axis=0) ** 2).sum(),
            RNG.normal(size=(3, 4)),
        )

    def test_where(self):
        cond = RNG.random((3, 4)) > 0.5
        b = RNG.normal(size=(3, 4))
        check_grad(
            lambda t: (where(cond, t, Tensor(b)) ** 2).sum(), RNG.normal(size=(3, 4))
        )


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        (x * 3).backward()
        (x * 3).backward()
        assert float(x.grad) == 6.0

    def test_diamond_graph(self):
        # y = x*x + x*x must give dy/dx = 4x through shared subexpression.
        x = Tensor(np.array(3.0), requires_grad=True)
        sq = x * x
        (sq + sq).backward()
        assert float(x.grad) == pytest.approx(12.0)

    def test_reused_tensor_in_two_branches(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = (x * 2).sum() + (x**2).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad
        assert y._backward is None

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x.detach() * 2).sum()
        assert not y.requires_grad

    def test_non_required_leaf_gets_no_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        c = Tensor(np.ones(3))
        (x * c).sum().backward()
        assert c.grad is None
        assert x.grad is not None


class TestUnbroadcast:
    def test_prepended_axes(self):
        grad = np.ones((2, 3, 4))
        assert _unbroadcast(grad, (4,)).shape == (4,)
        np.testing.assert_allclose(_unbroadcast(grad, (4,)), np.full(4, 6.0))

    def test_size_one_axes(self):
        grad = np.ones((2, 3, 4))
        out = _unbroadcast(grad, (2, 1, 4))
        assert out.shape == (2, 1, 4)
        np.testing.assert_allclose(out, np.full((2, 1, 4), 3.0))

    @given(
        arrays(
            np.float64,
            array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
            elements=st.floats(-10, 10),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_broadcast_add_grad_shape(self, base):
        x = Tensor(base, requires_grad=True)
        bias = Tensor(np.ones(base.shape[-1]), requires_grad=True)
        (x + bias).sum().backward()
        assert x.grad.shape == base.shape
        assert bias.grad.shape == (base.shape[-1],)
        np.testing.assert_allclose(x.grad, np.ones_like(base))
        expected = np.prod(base.shape[:-1]) if base.ndim > 1 else 1.0
        np.testing.assert_allclose(bias.grad, np.full(base.shape[-1], expected))


@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(-5, 5),
    )
)
@settings(max_examples=40, deadline=None)
def test_property_sum_grad_is_ones(base):
    x = Tensor(base, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(base))


@given(st.lists(st.floats(-3, 3), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_property_tanh_bounded_grad(values):
    x = Tensor(np.array(values), requires_grad=True)
    x.tanh().sum().backward()
    assert np.all(x.grad <= 1.0 + 1e-12)
    assert np.all(x.grad >= 0.0)
