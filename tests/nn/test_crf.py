"""CRF tests: partition via brute force, Viterbi optimality, fuzzy CRF."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import FuzzyCrf, LinearChainCrf, Tensor

from ..helpers import check_grad

RNG = np.random.default_rng(21)


def brute_force_log_z(crf, emissions, length):
    """Enumerate every path to compute the exact partition function."""
    num_tags = crf.num_tags
    scores = []
    for path in itertools.product(range(num_tags), repeat=length):
        score = crf.start_scores.data[path[0]] + emissions[0, path[0]]
        for t in range(1, length):
            score += crf.transitions.data[path[t - 1], path[t]]
            score += emissions[t, path[t]]
        score += crf.end_scores.data[path[-1]]
        scores.append(score)
    return float(np.logaddexp.reduce(scores))


def brute_force_best_path(crf, emissions, length):
    num_tags = crf.num_tags
    best, best_score = None, -np.inf
    for path in itertools.product(range(num_tags), repeat=length):
        score = crf.start_scores.data[path[0]] + emissions[0, path[0]]
        for t in range(1, length):
            score += crf.transitions.data[path[t - 1], path[t]]
            score += emissions[t, path[t]]
        score += crf.end_scores.data[path[-1]]
        if score > best_score:
            best, best_score = list(path), score
    return best


class TestPartition:
    @pytest.mark.parametrize("length", [1, 2, 4])
    def test_matches_brute_force(self, length):
        crf = LinearChainCrf(3, rng=np.random.default_rng(1))
        emissions = RNG.normal(size=(1, length, 3))
        mask = np.ones((1, length))
        log_z = crf._partition(Tensor(emissions), mask).numpy()[0]
        assert log_z == pytest.approx(
            brute_force_log_z(crf, emissions[0], length), abs=1e-8
        )

    def test_masked_positions_excluded(self):
        crf = LinearChainCrf(3, rng=np.random.default_rng(2))
        emissions = RNG.normal(size=(1, 5, 3))
        mask = np.ones((1, 5))
        mask[0, 3:] = 0
        log_z = crf._partition(Tensor(emissions), mask).numpy()[0]
        assert log_z == pytest.approx(
            brute_force_log_z(crf, emissions[0, :3], 3), abs=1e-8
        )


class TestNll:
    def test_is_proper_negative_log_prob(self):
        # NLL of the gold path must be >= 0 and equal -log p(path).
        crf = LinearChainCrf(3, rng=np.random.default_rng(3))
        emissions = RNG.normal(size=(1, 4, 3))
        tags = np.array([[0, 2, 1, 0]])
        nll = float(crf.neg_log_likelihood(Tensor(emissions), tags).data)
        assert nll >= 0

        log_z = brute_force_log_z(crf, emissions[0], 4)
        gold = crf.start_scores.data[0] + emissions[0, 0, 0]
        gold += crf.transitions.data[0, 2] + emissions[0, 1, 2]
        gold += crf.transitions.data[2, 1] + emissions[0, 2, 1]
        gold += crf.transitions.data[1, 0] + emissions[0, 3, 0]
        gold += crf.end_scores.data[0]
        assert nll == pytest.approx(log_z - gold, abs=1e-8)

    def test_gradient_wrt_emissions(self):
        crf = LinearChainCrf(3, rng=np.random.default_rng(4))
        tags = np.array([[0, 1, 2]])
        check_grad(
            lambda t: crf.neg_log_likelihood(t.reshape(1, 3, 3), tags),
            RNG.normal(size=(3, 3)),
        )

    def test_gradient_wrt_transitions(self):
        crf = LinearChainCrf(3, rng=np.random.default_rng(5))
        emissions = Tensor(RNG.normal(size=(2, 4, 3)))
        tags = np.array([[0, 1, 2, 0], [2, 2, 1, 1]])
        loss = crf.neg_log_likelihood(emissions, tags)
        loss.backward()
        assert crf.transitions.grad is not None
        assert crf.start_scores.grad is not None
        assert crf.end_scores.grad is not None

    def test_requires_valid_first_position(self):
        crf = LinearChainCrf(3, rng=np.random.default_rng(6))
        emissions = Tensor(RNG.normal(size=(1, 3, 3)))
        mask = np.array([[0, 1, 1]])
        with pytest.raises(ValueError):
            crf.neg_log_likelihood(emissions, np.zeros((1, 3), dtype=int), mask)

    def test_training_fits_pattern(self):
        # The CRF alone (fixed emissions) should learn transition structure.
        from repro.nn import Adam, ParamGroup

        crf = LinearChainCrf(2, rng=np.random.default_rng(7))
        emissions = Tensor(np.zeros((4, 6, 2)))  # no emission signal at all
        tags = np.tile([0, 1, 0, 1, 0, 1], (4, 1))  # strict alternation
        opt = Adam([ParamGroup(crf.parameters(), 0.1)])
        for _ in range(60):
            opt.zero_grad()
            loss = crf.neg_log_likelihood(emissions, tags)
            loss.backward()
            opt.step()
        decoded = crf.decode(emissions)
        assert decoded[0] in ([0, 1, 0, 1, 0, 1],)


class TestFusedAgainstReference:
    """The fused forward-backward must match the compositional autograd."""

    def setup_method(self):
        self.crf = LinearChainCrf(4, rng=np.random.default_rng(30))
        self.emissions = RNG.normal(size=(3, 6, 4))
        self.mask = np.ones((3, 6))
        self.mask[1, 4:] = 0
        self.mask[2, 2:] = 0
        self.tags = np.random.default_rng(31).integers(0, 4, size=(3, 6))

    def test_partition_values_match(self):
        fused = self.crf._partition(Tensor(self.emissions), self.mask)
        reference = self.crf._partition_reference(
            Tensor(self.emissions), self.mask
        )
        np.testing.assert_allclose(fused.numpy(), reference.numpy(), atol=1e-9)

    def test_partition_gradients_match(self):
        def run(fn):
            self.crf.zero_grad()
            emissions = Tensor(self.emissions.copy(), requires_grad=True)
            fn(emissions, self.mask).sum().backward()
            return (
                emissions.grad.copy(),
                self.crf.transitions.grad.copy(),
                self.crf.start_scores.grad.copy(),
                self.crf.end_scores.grad.copy(),
            )

        fused = run(self.crf._partition)
        reference = run(self.crf._partition_reference)
        for f, r in zip(fused, reference):
            np.testing.assert_allclose(f, r, atol=1e-8)

    def test_gold_score_values_and_grads_match(self):
        def run(fn):
            self.crf.zero_grad()
            emissions = Tensor(self.emissions.copy(), requires_grad=True)
            out = fn(emissions, self.tags, self.mask)
            out.sum().backward()
            return out.numpy().copy(), emissions.grad.copy(), \
                self.crf.transitions.grad.copy()

        fused_out, fused_ge, fused_gt = run(self.crf._score_sequence)
        ref_out, ref_ge, ref_gt = run(self.crf._score_sequence_reference)
        np.testing.assert_allclose(fused_out, ref_out, atol=1e-9)
        np.testing.assert_allclose(fused_ge, ref_ge, atol=1e-9)
        np.testing.assert_allclose(fused_gt, ref_gt, atol=1e-9)

    def test_non_prefix_mask_falls_back(self):
        mask = np.ones((1, 4))
        mask[0, 2] = 0  # hole in the middle: not a prefix mask
        assert not LinearChainCrf._is_prefix_mask(mask)
        emissions = Tensor(RNG.normal(size=(1, 4, 4)), requires_grad=True)
        out = self.crf._partition(emissions, mask)
        assert np.isfinite(out.numpy()).all()

    def test_fused_handles_neg_inf_penalties(self):
        # The fuzzy CRF adds -1e9 penalties to emissions; the fused op must
        # stay finite.
        crf = FuzzyCrf(3, rng=np.random.default_rng(32))
        emissions = Tensor(RNG.normal(size=(2, 5, 3)), requires_grad=True)
        allowed = np.ones((2, 5, 3), dtype=bool)
        allowed[0, 1] = [True, False, False]
        loss = crf.constrained_nll(emissions, allowed)
        loss.backward()
        assert np.isfinite(float(loss.data))
        assert np.isfinite(emissions.grad).all()


class TestViterbi:
    @pytest.mark.parametrize("length", [1, 3, 5])
    def test_matches_brute_force(self, length):
        crf = LinearChainCrf(3, rng=np.random.default_rng(8))
        emissions = RNG.normal(size=(1, length, 3)) * 2
        decoded = crf.decode(Tensor(emissions))[0]
        assert decoded == brute_force_best_path(crf, emissions[0], length)

    def test_respects_mask_lengths(self):
        crf = LinearChainCrf(3, rng=np.random.default_rng(9))
        emissions = RNG.normal(size=(2, 5, 3))
        mask = np.ones((2, 5))
        mask[1, 2:] = 0
        decoded = crf.decode(Tensor(emissions), mask)
        assert len(decoded[0]) == 5
        assert len(decoded[1]) == 2

    @given(st.integers(1, 5), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_property_decode_score_at_least_gold(self, length, num_tags):
        rng = np.random.default_rng(length * 13 + num_tags)
        crf = LinearChainCrf(num_tags, rng=rng)
        emissions = rng.normal(size=(1, length, num_tags))

        def path_score(path):
            s = crf.start_scores.data[path[0]] + emissions[0, 0, path[0]]
            for t in range(1, length):
                s += crf.transitions.data[path[t - 1], path[t]]
                s += emissions[0, t, path[t]]
            return s + crf.end_scores.data[path[-1]]

        best = crf.decode(Tensor(emissions))[0]
        random_path = list(rng.integers(0, num_tags, size=length))
        assert path_score(best) >= path_score(random_path) - 1e-9


def brute_force_marginals(crf, emissions, length):
    """Exact unary marginals by enumerating every tag path."""
    num_tags = crf.num_tags
    weights = np.zeros((length, num_tags))
    for path in itertools.product(range(num_tags), repeat=length):
        score = crf.start_scores.data[path[0]] + emissions[0, path[0]]
        for t in range(1, length):
            score += crf.transitions.data[path[t - 1], path[t]]
            score += emissions[t, path[t]]
        score += crf.end_scores.data[path[-1]]
        for t, tag in enumerate(path):
            weights[t, tag] += np.exp(score)
    return weights / weights.sum(axis=1, keepdims=True)


class TestMarginals:
    @pytest.mark.parametrize("length", [1, 2, 4])
    def test_matches_brute_force(self, length):
        crf = LinearChainCrf(3, rng=np.random.default_rng(11))
        emissions = RNG.normal(size=(1, length, 3))
        marginals = crf.marginals(Tensor(emissions))
        expected = brute_force_marginals(crf, emissions[0], length)
        np.testing.assert_allclose(marginals[0], expected, atol=1e-8)

    def test_rows_sum_to_one_and_padding_is_zero(self):
        crf = LinearChainCrf(4, rng=np.random.default_rng(12))
        emissions = RNG.normal(size=(3, 6, 4))
        mask = np.ones((3, 6))
        mask[1, 4:] = 0
        mask[2, 1:] = 0
        marginals = crf.marginals(Tensor(emissions), mask)
        sums = marginals.sum(axis=2)
        np.testing.assert_allclose(sums[0], np.ones(6), atol=1e-8)
        np.testing.assert_allclose(sums[1, :4], np.ones(4), atol=1e-8)
        assert np.all(marginals[1, 4:] == 0.0)
        np.testing.assert_allclose(sums[2, :1], np.ones(1), atol=1e-8)
        assert np.all(marginals[2, 1:] == 0.0)

    def test_single_position_reduces_to_softmax(self):
        crf = LinearChainCrf(3, rng=np.random.default_rng(13))
        emissions = RNG.normal(size=(1, 1, 3))
        scores = (
            emissions[0, 0] + crf.start_scores.data + crf.end_scores.data
        )
        softmax = np.exp(scores - scores.max())
        softmax /= softmax.sum()
        np.testing.assert_allclose(
            crf.marginals(Tensor(emissions))[0, 0], softmax, atol=1e-8
        )

    def test_non_prefix_mask_rejected(self):
        crf = LinearChainCrf(3, rng=np.random.default_rng(14))
        emissions = RNG.normal(size=(1, 4, 3))
        mask = np.array([[1.0, 0.0, 1.0, 1.0]])
        with pytest.raises(ValueError):
            crf.marginals(Tensor(emissions), mask)


class TestFuzzyCrf:
    def test_all_allowed_gives_zero_loss(self):
        crf = FuzzyCrf(3, rng=np.random.default_rng(10))
        emissions = Tensor(RNG.normal(size=(2, 4, 3)))
        allowed = np.ones((2, 4, 3), dtype=bool)
        loss = crf.constrained_nll(emissions, allowed)
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)

    def test_single_allowed_equals_hard_nll(self):
        crf = FuzzyCrf(3, rng=np.random.default_rng(11))
        emissions = Tensor(RNG.normal(size=(1, 4, 3)))
        tags = np.array([[0, 2, 1, 0]])
        allowed = np.zeros((1, 4, 3), dtype=bool)
        for t in range(4):
            allowed[0, t, tags[0, t]] = True
        fuzzy = float(crf.constrained_nll(emissions, allowed).data)
        hard = float(crf.neg_log_likelihood(emissions, tags).data)
        assert fuzzy == pytest.approx(hard, abs=1e-5)

    def test_partial_constraints_between_bounds(self):
        crf = FuzzyCrf(3, rng=np.random.default_rng(12))
        emissions = Tensor(RNG.normal(size=(1, 4, 3)))
        tags = np.array([[0, 2, 1, 0]])
        hard_allowed = np.zeros((1, 4, 3), dtype=bool)
        for t in range(4):
            hard_allowed[0, t, tags[0, t]] = True
        partial = hard_allowed.copy()
        partial[0, 1] = True  # position 1 is unconstrained
        loss_partial = float(crf.constrained_nll(emissions, partial).data)
        loss_hard = float(crf.constrained_nll(emissions, hard_allowed).data)
        assert 0.0 <= loss_partial <= loss_hard + 1e-9

    def test_empty_allowed_raises(self):
        crf = FuzzyCrf(3, rng=np.random.default_rng(13))
        emissions = Tensor(RNG.normal(size=(1, 2, 3)))
        allowed = np.ones((1, 2, 3), dtype=bool)
        allowed[0, 1] = False
        with pytest.raises(ValueError):
            crf.constrained_nll(emissions, allowed)

    def test_gradient_flows(self):
        crf = FuzzyCrf(3, rng=np.random.default_rng(14))
        emissions = Tensor(RNG.normal(size=(1, 3, 3)), requires_grad=True)
        allowed = np.ones((1, 3, 3), dtype=bool)
        allowed[0, 0] = [True, False, False]
        crf.constrained_nll(emissions, allowed).backward()
        assert emissions.grad is not None
