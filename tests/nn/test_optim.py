"""Tests for optimisers, gradient clipping and schedules."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AdamW,
    LinearWarmupSchedule,
    Parameter,
    ParamGroup,
    Sgd,
    Tensor,
    clip_grad_norm,
)


def quadratic_loss(param):
    return ((param - Tensor(np.array([1.0, -2.0, 3.0]))) ** 2).sum()


def run_optimizer(opt_factory, steps=200):
    param = Parameter(np.zeros(3))
    opt = opt_factory(param)
    for _ in range(steps):
        opt.zero_grad()
        loss = quadratic_loss(param)
        loss.backward()
        opt.step()
    return param.data


class TestSgd:
    def test_converges_on_quadratic(self):
        final = run_optimizer(lambda p: Sgd([ParamGroup([p], 0.1)]))
        np.testing.assert_allclose(final, [1.0, -2.0, 3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Parameter(np.zeros(3))
            opt = Sgd([ParamGroup([param], 0.02)], momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(param).backward()
                opt.step()
            return float(quadratic_loss(param).data)

        assert run(0.9) < run(0.0)

    def test_skips_params_without_grad(self):
        p1 = Parameter(np.zeros(2))
        p2 = Parameter(np.ones(2))
        opt = Sgd([ParamGroup([p1, p2], 0.1)])
        (p1.sum()).backward()
        opt.step()
        np.testing.assert_allclose(p2.data, 1.0)  # untouched


class TestAdam:
    def test_converges_on_quadratic(self):
        final = run_optimizer(lambda p: Adam([ParamGroup([p], 0.1)]))
        np.testing.assert_allclose(final, [1.0, -2.0, 3.0], atol=1e-2)

    def test_from_params_helper(self):
        param = Parameter(np.zeros(2))
        opt = Adam.from_params([param], lr=0.1)
        assert len(opt.groups) == 1
        assert opt.groups[0].lr == 0.1

    def test_param_groups_use_own_lr(self):
        fast = Parameter(np.zeros(1))
        slow = Parameter(np.zeros(1))
        opt = Sgd([ParamGroup([fast], 1.0), ParamGroup([slow], 0.01)])
        for p in (fast, slow):
            p.grad = np.ones(1)
        opt.step()
        assert abs(fast.data[0]) > abs(slow.data[0]) * 50

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            Adam([])


class TestAdamW:
    def test_weight_decay_shrinks_irrelevant_weights(self):
        param = Parameter(np.array([5.0]))
        opt = AdamW([ParamGroup([param], 0.05)], weight_decay=0.1)
        for _ in range(100):
            opt.zero_grad()
            param.grad = np.zeros(1)  # loss is flat: only decay acts
            opt.step()
        assert abs(param.data[0]) < 5.0 * 0.7

    def test_decoupled_decay_differs_from_coupled(self):
        def run(cls, **kwargs):
            param = Parameter(np.array([2.0]))
            opt = cls([ParamGroup([param], 0.01)], weight_decay=0.5, **kwargs)
            for _ in range(10):
                opt.zero_grad()
                (param * Tensor(np.array([1.0]))).sum().backward()
                opt.step()
            return param.data[0]

        assert run(AdamW) != pytest.approx(run(Adam))


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        pre_norm = clip_grad_norm([param], max_norm=1.0)
        assert pre_norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.1)
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, 0.1)

    def test_ignores_none_grads(self):
        param = Parameter(np.zeros(4))
        assert clip_grad_norm([param], max_norm=1.0) == 0.0


class TestSchedule:
    def test_warmup_then_decay(self):
        param = Parameter(np.zeros(1))
        opt = Adam([ParamGroup([param], 1.0)])
        sched = LinearWarmupSchedule(opt, warmup_steps=10, total_steps=100)
        scales = [sched.step() for _ in range(100)]
        assert scales[0] == pytest.approx(0.1)
        assert scales[8] < scales[9] <= 1.0
        assert scales[-1] == pytest.approx(0.0, abs=1e-9)
        assert max(scales) == pytest.approx(1.0)

    def test_updates_optimizer_lr(self):
        param = Parameter(np.zeros(1))
        opt = Adam([ParamGroup([param], 2.0)])
        sched = LinearWarmupSchedule(opt, warmup_steps=2, total_steps=4)
        sched.step()
        assert opt.groups[0].lr == pytest.approx(1.0)

    def test_invalid_total_steps(self):
        param = Parameter(np.zeros(1))
        opt = Adam([ParamGroup([param], 1.0)])
        with pytest.raises(ValueError):
            LinearWarmupSchedule(opt, warmup_steps=0, total_steps=0)
