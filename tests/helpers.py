"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import Tensor


def numeric_grad(
    fn: Callable[[Tensor], Tensor], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = float(fn(Tensor(x)).data)
        flat[i] = original - eps
        low = float(fn(Tensor(x)).data)
        flat[i] = original
        grad_flat[i] = (high - low) / (2.0 * eps)
    return grad


def check_grad(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autograd gradient of scalar ``fn`` matches finite differences."""
    tensor = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    out = fn(tensor)
    out.backward()
    expected = numeric_grad(fn, np.asarray(x, dtype=np.float64))
    np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=rtol)
