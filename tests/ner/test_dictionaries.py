"""Tests for entity dictionary construction."""

import pytest

from repro.ner import build_dictionaries


class TestBuildDictionaries:
    def test_full_coverage_contains_bank(self):
        dicts = build_dictionaries(coverage=1.0, seed=0)
        from repro.corpus import names

        assert dicts.first_names == frozenset(names.FIRST_NAMES)
        assert ("computer", "science") in dicts.majors

    def test_partial_coverage_smaller(self):
        full = build_dictionaries(coverage=1.0, seed=0)
        half = build_dictionaries(coverage=0.5, seed=0)
        assert len(half.first_names) < len(full.first_names)
        assert len(half.majors) < len(full.majors)

    def test_coverage_bounds(self):
        with pytest.raises(ValueError):
            build_dictionaries(coverage=0.0)
        with pytest.raises(ValueError):
            build_dictionaries(coverage=1.5)
        with pytest.raises(ValueError):
            build_dictionaries(noise=-0.1)

    def test_deterministic(self):
        a = build_dictionaries(coverage=0.6, seed=3)
        b = build_dictionaries(coverage=0.6, seed=3)
        assert a.first_names == b.first_names
        assert a.companies == b.companies

    def test_noise_adds_distractors(self):
        clean = build_dictionaries(coverage=1.0, seed=0, noise=0.0)
        noisy = build_dictionaries(coverage=1.0, seed=0, noise=1.0)
        assert ("communication",) not in clean.majors
        assert ("communication",) in noisy.majors

    def test_composite_values_enumerated(self):
        dicts = build_dictionaries(coverage=1.0, seed=0)
        # every (stem, suffix) combination is listed
        assert ("acme", "co.", "ltd") in dicts.companies
        assert ("acme", "inc") in dicts.companies

    def test_phrase_dictionaries_cover_open_classes(self):
        dicts = build_dictionaries(coverage=0.5, seed=1)
        assert set(dicts.phrase_dictionaries()) == {
            "College", "Major", "Company", "Position", "ProjName",
        }

    def test_max_phrase_length(self):
        dicts = build_dictionaries(coverage=1.0, seed=0)
        assert dicts.max_phrase_length() >= 3
