"""Tests for soft labels, confidence selection and Algorithm 2."""

import numpy as np
import pytest

from repro.corpus import build_ner_corpus
from repro.ner import (
    NerConfig,
    NerTagger,
    SelfTrainConfig,
    SelfTrainer,
    annotate_examples,
    build_dictionaries,
    confidence_mask,
    soft_pseudo_labels,
)
from repro.ner.self_training import hard_to_onehot
from repro.text import WordPieceTokenizer


class TestSoftPseudoLabels:
    def test_normalised(self):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(5), size=(3, 4))
        word_mask = np.ones((3, 4))
        soft = soft_pseudo_labels(probs, word_mask)
        np.testing.assert_allclose(soft.sum(axis=-1), 1.0, atol=1e-9)

    def test_sharpens_confident_predictions(self):
        # With balanced class frequencies, the squared re-weighting
        # sharpens each row towards its confident class.
        probs = np.array(
            [[[0.7, 0.2, 0.1], [0.1, 0.7, 0.2], [0.2, 0.1, 0.7]]]
        )
        soft = soft_pseudo_labels(probs, np.ones((1, 3)))
        assert soft[0, 0, 0] > probs[0, 0, 0]
        assert soft[0, 1, 1] > probs[0, 1, 1]

    def test_rare_class_boosted_by_frequency_division(self):
        # Two tokens strongly predicted class0; one weakly class1.  The
        # frequency division (p_c) boosts the rare class1 relative to a
        # plain square.
        probs = np.array([[[0.9, 0.1], [0.9, 0.1], [0.55, 0.45]]])
        soft = soft_pseudo_labels(probs, np.ones((1, 3)))
        plain_square = probs**2 / (probs**2).sum(-1, keepdims=True)
        assert soft[0, 2, 1] > plain_square[0, 2, 1]

    def test_hard_onehot(self):
        soft = np.array([[[0.2, 0.8], [0.6, 0.4]]])
        hard = hard_to_onehot(soft)
        np.testing.assert_array_equal(hard, [[[0, 1], [1, 0]]])


class TestConfidenceMask:
    def test_threshold(self):
        soft = np.array([[[0.95, 0.05], [0.6, 0.4]]])
        word_mask = np.ones((1, 2))
        mask = confidence_mask(soft, word_mask, gamma=0.8)
        np.testing.assert_array_equal(mask, [[1.0, 0.0]])

    def test_respects_word_mask(self):
        soft = np.array([[[0.95, 0.05], [0.99, 0.01]]])
        word_mask = np.array([[1.0, 0.0]])
        mask = confidence_mask(soft, word_mask, gamma=0.8)
        np.testing.assert_array_equal(mask, [[1.0, 0.0]])


@pytest.fixture(scope="module")
def setting():
    corpus = build_ner_corpus(
        num_train_docs=10, num_validation_docs=3, num_test_docs=3, seed=21
    )
    annotator_dicts = build_dictionaries(coverage=0.6, seed=2, noise=0.3)
    from repro.ner import DistantAnnotator

    train = annotate_examples(corpus.train, DistantAnnotator(annotator_dicts))
    tokenizer = WordPieceTokenizer.train(
        [e.text for e in train], vocab_size=400, min_frequency=1
    )
    config = NerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        layers=1,
        heads=2,
        lstm_hidden=16,
        dropout=0.0,
    )
    return corpus, train, tokenizer, config


class TestSelfTrainer:
    def test_teacher_training_learns(self, setting):
        corpus, train, tokenizer, config = setting
        model = NerTagger(config, tokenizer, rng=np.random.default_rng(3))
        trainer = SelfTrainer(
            model,
            SelfTrainConfig(teacher_epochs=4, teacher_patience=4,
                            iterations=0, learning_rate=3e-3),
            seed=0,
        )
        teacher = trainer.train_teacher(train, corpus.validation)
        losses = [h["loss"] for h in trainer.history if h["stage"] == 0.0]
        assert losses[-1] < losses[0]

    def test_without_sd_returns_after_teacher(self, setting):
        corpus, train, tokenizer, config = setting
        model = NerTagger(config, tokenizer, rng=np.random.default_rng(4))
        trainer = SelfTrainer(
            model,
            SelfTrainConfig(teacher_epochs=2, iterations=5,
                            use_self_distillation=False, learning_rate=3e-3),
            seed=0,
        )
        final = trainer.train(train, corpus.validation)
        stages = {h["stage"] for h in trainer.history}
        assert stages == {0.0}
        assert final is model

    def test_full_algorithm_runs_student_iterations(self, setting):
        corpus, train, tokenizer, config = setting
        model = NerTagger(config, tokenizer, rng=np.random.default_rng(5))
        trainer = SelfTrainer(
            model,
            SelfTrainConfig(teacher_epochs=2, iterations=4, batch_size=8,
                            learning_rate=3e-3, eval_every=2),
            seed=0,
        )
        student = trainer.train(train, corpus.validation)
        stage1 = [h for h in trainer.history if h["stage"] == 1.0]
        assert len(stage1) == 4
        assert student is not model  # the student is a clone

    def test_ablation_toggles_change_targets(self, setting):
        corpus, train, tokenizer, config = setting

        def run(**kwargs):
            model = NerTagger(config, tokenizer, rng=np.random.default_rng(6))
            trainer = SelfTrainer(
                model,
                SelfTrainConfig(teacher_epochs=1, iterations=2, batch_size=4,
                                learning_rate=3e-3, **kwargs),
                seed=0,
            )
            trainer.train(train[:8], corpus.validation[:2])
            return [h["loss"] for h in trainer.history if h["stage"] == 1.0]

        soft = run()
        hard = run(use_soft_labels=False)
        no_hcs = run(use_confidence_selection=False)
        assert soft and hard and no_hcs
        assert soft != hard  # different targets produce different losses
