"""Tests for distant-supervision data augmentation."""

import numpy as np
import pytest

from repro.corpus import NerExample
from repro.docmodel import ENTITY_SCHEME, iob_to_spans
from repro.ner import (
    augment_examples,
    build_dictionaries,
    reorder_fields,
    replace_mentions,
)


@pytest.fixture(scope="module")
def dictionaries():
    return build_dictionaries(coverage=1.0, seed=0)


def spans_of(example):
    ids = [ENTITY_SCHEME.label_id(l) for l in example.labels]
    return iob_to_spans(ids, ENTITY_SCHEME)


EXAMPLE = NerExample(
    "2019.07 - 2021.06 acme co. ltd senior software engineer".split(),
    ["B-Date", "I-Date", "I-Date", "B-Company", "I-Company", "I-Company",
     "B-Position", "I-Position", "I-Position"],
    "WorkExp",
)


class TestReplaceMentions:
    def test_replaces_with_dictionary_value(self, dictionaries):
        rng = np.random.default_rng(0)
        out = replace_mentions(EXAMPLE, dictionaries, rng)
        assert out is not None
        assert len(out.words) == len(out.labels)
        # Same entity classes survive.
        assert {t for *_, t in spans_of(out)} == {"Date", "Company", "Position"}

    def test_replacement_comes_from_dictionary(self, dictionaries):
        rng = np.random.default_rng(1)
        out = replace_mentions(EXAMPLE, dictionaries, rng)
        replaced = [
            tuple(out.words[s:e])
            for s, e, t in spans_of(out)
            if t in ("Company", "Position")
        ]
        pools = dictionaries.companies | dictionaries.positions
        assert any(r in pools for r in replaced)

    def test_no_replaceable_spans_returns_none(self, dictionaries):
        example = NerExample(["2019.07"], ["B-Date"], "WorkExp")
        assert replace_mentions(example, dictionaries, np.random.default_rng(0)) is None


class TestReorderFields:
    def test_swaps_adjacent_entities(self):
        rng = np.random.default_rng(0)
        out = reorder_fields(EXAMPLE, rng)
        assert out is not None
        tags = [t for *_, t in spans_of(out)]
        assert sorted(tags) == sorted(t for *_, t in spans_of(EXAMPLE))
        assert tags != [t for *_, t in spans_of(EXAMPLE)]

    def test_word_count_preserved(self):
        out = reorder_fields(EXAMPLE, np.random.default_rng(0))
        assert len(out.words) == len(EXAMPLE.words)

    def test_no_adjacent_pairs_returns_none(self):
        example = NerExample(
            ["2019.07"] + ["x"] * 5 + ["acme"],
            ["B-Date"] + ["O"] * 5 + ["B-Company"],
            "WorkExp",
        )
        assert reorder_fields(example, np.random.default_rng(0)) is None


class TestAugmentExamples:
    def test_output_superset(self, dictionaries):
        out = augment_examples(
            [EXAMPLE] * 4, dictionaries, replacement_factor=1.0,
            reorder_factor=1.0, seed=0,
        )
        assert len(out) > 4
        assert out[:4] == [EXAMPLE] * 4

    def test_zero_factors_identity(self, dictionaries):
        out = augment_examples(
            [EXAMPLE], dictionaries, replacement_factor=0.0,
            reorder_factor=0.0, seed=0,
        )
        assert out == [EXAMPLE]

    def test_augmented_labels_stay_aligned(self, dictionaries):
        out = augment_examples(
            [EXAMPLE] * 10, dictionaries, replacement_factor=1.0,
            reorder_factor=1.0, seed=3,
        )
        for example in out:
            assert len(example.words) == len(example.labels)
