"""Tests for NER featurisation and the tagger model."""

import numpy as np
import pytest

from repro.corpus import NerExample, build_ner_corpus
from repro.docmodel import ENTITY_SCHEME
from repro.ner import NerConfig, NerFeaturizer, NerTagger
from repro.nn import no_grad
from repro.text import WordPieceTokenizer


@pytest.fixture(scope="module")
def corpus():
    return build_ner_corpus(
        num_train_docs=6, num_validation_docs=2, num_test_docs=2, seed=3
    )


@pytest.fixture(scope="module")
def tokenizer(corpus):
    return WordPieceTokenizer.train(
        [e.text for e in corpus.train], vocab_size=400, min_frequency=1
    )


@pytest.fixture(scope="module")
def config(tokenizer):
    return NerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        layers=1,
        heads=2,
        lstm_hidden=16,
        dropout=0.0,
    )


@pytest.fixture()
def tagger(config, tokenizer):
    return NerTagger(config, tokenizer, rng=np.random.default_rng(1))


class TestNerFeaturizer:
    def test_shapes(self, tokenizer, corpus):
        featurizer = NerFeaturizer(tokenizer, max_words=40, max_pieces=80)
        features = featurizer.featurize(corpus.train[:3])
        # Padding is dynamic: width tracks the batch, capped by the config.
        assert features.piece_ids.shape[0] == 3
        assert features.piece_ids.shape[1] <= 80
        assert features.first_piece.shape[1] <= 40
        assert features.batch_size == 3
        assert features.max_words == features.first_piece.shape[1]
        longest = int(features.piece_mask.sum(axis=1).max())
        assert features.piece_ids.shape[1] == longest

    def test_cls_at_zero(self, tokenizer, corpus):
        featurizer = NerFeaturizer(tokenizer)
        features = featurizer.featurize(corpus.train[:2])
        assert np.all(features.piece_ids[:, 0] == tokenizer.vocab.cls_id)

    def test_first_piece_points_at_word_starts(self, tokenizer):
        featurizer = NerFeaturizer(tokenizer)
        example = NerExample(["alpha", "beta"], ["O", "B-Name"], "PInfo")
        features = featurizer.featurize([example])
        first = features.first_piece[0]
        assert first[0] == 1  # right after [CLS]
        assert first[1] > first[0]
        assert features.word_mask[0, :2].sum() == 2

    def test_label_ids_follow_scheme(self, tokenizer):
        featurizer = NerFeaturizer(tokenizer)
        example = NerExample(["x", "y"], ["B-Email", "I-Email"], "PInfo")
        features = featurizer.featurize([example])
        assert features.label_ids[0, 0] == ENTITY_SCHEME.begin_id("Email")
        assert features.label_ids[0, 1] == ENTITY_SCHEME.inside_id("Email")

    def test_truncation_respects_piece_budget(self, tokenizer):
        featurizer = NerFeaturizer(tokenizer, max_words=50, max_pieces=10)
        example = NerExample(
            ["word"] * 30, ["O"] * 30, "WorkExp"
        )
        features = featurizer.featurize([example])
        assert features.piece_mask[0].sum() <= 10
        assert features.word_mask[0].sum() < 30

    def test_empty_batch_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            NerFeaturizer(tokenizer).featurize([])

    def test_piece_shape_features(self, tokenizer):
        from repro.ner.encoding import SHAPE_DIM

        featurizer = NerFeaturizer(tokenizer)
        example = NerExample(
            ["2024.01", "alice", "a@b.com"], ["B-Date", "O", "B-Email"], "PInfo"
        )
        features = featurizer.featurize([example])
        assert features.piece_shape.shape == (
            1, features.piece_ids.shape[1], SHAPE_DIM,
        )
        # [CLS] slot carries a zero shape vector.
        assert features.piece_shape[0, 0].sum() == 0
        # The date's first piece: contains digits, no '@'.
        date_piece = features.first_piece[0, 0]
        assert features.piece_shape[0, date_piece, 0] == 1.0  # has digit
        assert features.piece_shape[0, date_piece, 3] == 0.0  # no @
        # The email's first piece: has '@' somewhere in its word.
        email_piece = features.first_piece[0, 2]
        assert features.piece_shape[0, email_piece, 3] == 1.0

    def test_word_shape_values(self):
        from repro.ner.encoding import word_shape

        shape = word_shape("555-1234", position=2, total=4, is_initial=True)
        assert shape[0] == 1.0          # contains digit
        assert shape[1] == 0.0          # not all digits (dash)
        assert 0.8 < shape[2] < 1.0     # digit fraction
        assert shape[4] == 1.0          # punctuation
        assert shape[7] == 0.5          # relative position

    def test_batches_cover_everything(self, tokenizer, corpus):
        featurizer = NerFeaturizer(tokenizer)
        seen = 0
        for features, chunk in featurizer.batches(corpus.train, batch_size=4):
            assert features.batch_size == len(chunk)
            seen += len(chunk)
        assert seen == len(corpus.train)


class TestNerTagger:
    def test_logits_shape(self, tagger, corpus):
        features = tagger.featurizer.featurize(corpus.train[:2])
        logits = tagger.logits(features)
        assert logits.shape == (2, features.max_words, ENTITY_SCHEME.num_labels)

    def test_loss_positive_and_differentiable(self, tagger, corpus):
        features = tagger.featurizer.featurize(corpus.train[:2])
        loss = tagger.loss(features)
        assert float(loss.data) > 0
        loss.backward()
        assert tagger.mlp.layers[0].weight.grad is not None
        assert tagger.encoder.embedding.word.weight.grad is not None

    def test_predict_alignment(self, tagger, corpus):
        predictions = tagger.predict(corpus.test[:3])
        for example, labels in zip(corpus.test[:3], predictions):
            assert len(labels) == len(example.words)
            assert all(l in ENTITY_SCHEME.labels for l in labels)

    def test_predict_batch_runs_under_no_grad(self, tagger, corpus, monkeypatch):
        # Regression guard: batched decoding must never record graphs.
        from repro.nn.tensor import is_grad_enabled

        seen = []
        original = NerTagger.logits

        def spy(self, features):
            seen.append(is_grad_enabled())
            return original(self, features)

        monkeypatch.setattr(NerTagger, "logits", spy)
        tagger.predict_batch(corpus.test[:3], batch_size=2)
        assert seen and not any(seen)

    def test_predict_probs_normalised(self, tagger, corpus):
        probs = tagger.predict_probs(corpus.test[:2])
        sums = probs.sum(axis=-1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_clone_identical_but_independent(self, tagger):
        twin = tagger.clone()
        for (name_a, a), (name_b, b) in zip(
            sorted(tagger.named_parameters()), sorted(twin.named_parameters())
        ):
            assert name_a == name_b
            np.testing.assert_allclose(a.data, b.data)
        with no_grad():
            twin.mlp.layers[0].weight.data += 1.0
        assert not np.allclose(
            tagger.mlp.layers[0].weight.data, twin.mlp.layers[0].weight.data
        )

    def test_invalid_config(self, tokenizer):
        with pytest.raises(ValueError):
            NerConfig(vocab_size=10, hidden_dim=30, heads=4)

    def test_can_overfit_tiny_set(self, config, tokenizer):
        from repro.nn import AdamW, ParamGroup

        examples = [
            NerExample(
                "james smith studied at northfield university".split(),
                ["B-Name", "I-Name", "O", "O", "B-College", "I-College"],
                "EduExp",
            ),
            NerExample(
                "worked at acme inc since 2019.07".split(),
                ["O", "O", "B-Company", "I-Company", "O", "B-Date"],
                "WorkExp",
            ),
        ]
        tagger = NerTagger(config, tokenizer, rng=np.random.default_rng(5))
        optimizer = AdamW([ParamGroup(tagger.parameters(), 3e-3)])
        features = tagger.featurizer.featurize(examples)
        for _ in range(60):
            optimizer.zero_grad()
            loss = tagger.loss(features)
            loss.backward()
            optimizer.step()
        predictions = tagger.predict(examples)
        assert predictions[0][:2] == ["B-Name", "I-Name"]
        assert predictions[1][5] == "B-Date"


class TestLossBatch:
    def test_equals_mean_of_per_example_losses(self, tagger, corpus):
        examples = corpus.train[:4]
        tagger.eval()  # dropout off so both paths see identical activations
        batched = float(tagger.loss_batch(tagger.featurizer.featurize(examples)).data)
        singles = [
            float(tagger.loss(tagger.featurizer.featurize([e])).data)
            for e in examples
        ]
        assert batched == pytest.approx(np.mean(singles), abs=1e-6)

    def test_differs_from_token_mean_on_ragged_batch(self, tagger, corpus):
        # Ragged batches are exactly where example-mean and token-mean
        # weighting disagree; equality would mean loss_batch is miswired.
        examples = sorted(corpus.train[:6], key=lambda e: len(e.words))
        ragged = [examples[0], examples[-1]]
        if len(examples[0].words) == len(examples[-1].words):
            pytest.skip("corpus produced uniform lengths")
        tagger.eval()
        features = tagger.featurizer.featurize(ragged)
        assert float(tagger.loss_batch(features).data) != pytest.approx(
            float(tagger.loss(features).data), abs=1e-12
        )
