"""Tests for the distant-supervision annotator."""

import pytest

from repro.corpus import NerExample, ResumeGenerator, extract_block_examples
from repro.eval import entity_prf
from repro.ner import DistantAnnotator, annotate_examples, build_dictionaries


@pytest.fixture(scope="module")
def annotator():
    return DistantAnnotator(build_dictionaries(coverage=1.0, seed=0))


def labels_of(annotator, text):
    return annotator.annotate(text.split()).labels


class TestRegexMatchers:
    def test_email(self, annotator):
        labels = labels_of(annotator, "contact me at jane.doe@example.com now")
        assert labels[3] == "B-Email"

    def test_phone_compact(self, annotator):
        assert labels_of(annotator, "call 5551234567 today")[1] == "B-PhoneNum"

    def test_phone_dashed(self, annotator):
        assert labels_of(annotator, "call 555-123-4567 today")[1] == "B-PhoneNum"

    def test_phone_parenthesised(self, annotator):
        labels = labels_of(annotator, "phone ( 555 ) 123 4567")
        # tokens: phone ( 555 ) 123 4567 — generator emits '(555)' as one
        labels2 = labels_of(annotator, "phone (555) 123 4567")
        assert labels2[1] == "B-PhoneNum"
        assert labels2[2] == "I-PhoneNum"
        assert labels2[3] == "I-PhoneNum"

    def test_date_range(self, annotator):
        labels = labels_of(annotator, "2019.07 - 2021.06 acme inc")
        assert labels[:3] == ["B-Date", "I-Date", "I-Date"]

    def test_date_range_present(self, annotator):
        labels = labels_of(annotator, "2019.07 - present")
        assert labels == ["B-Date", "I-Date", "I-Date"]

    def test_single_date(self, annotator):
        assert labels_of(annotator, "awarded 2014.10 prize")[1] == "B-Date"

    def test_plain_number_not_date(self, annotator):
        assert labels_of(annotator, "managed 2019 people")[1] == "O"


class TestPrefixHeuristics:
    def test_age_prefix(self, annotator):
        labels = labels_of(annotator, "age : 34 years")
        assert labels[2] == "B-Age"

    def test_age_requires_two_digits(self, annotator):
        labels = labels_of(annotator, "age : 345 years")
        assert labels[2] == "O"

    def test_bare_number_without_prefix_unlabeled(self, annotator):
        assert labels_of(annotator, "shipped 34 features")[1] == "O"

    def test_email_prefix_does_not_override_regex(self, annotator):
        labels = labels_of(annotator, "email : a.b@example.com")
        assert labels[2] == "B-Email"


class TestValueSets:
    def test_gender(self, annotator):
        assert labels_of(annotator, "gender : female")[2] == "B-Gender"
        assert labels_of(annotator, "a female engineer")[1] == "B-Gender"

    def test_degree(self, annotator):
        labels = labels_of(annotator, "master degree in physics")
        assert labels[0] == "B-Degree"


class TestDictionaryMatching:
    def test_multiword_college(self, annotator):
        labels = labels_of(annotator, "studied at northfield state university now")
        assert labels[2] == "B-College"
        assert labels[3] == "I-College"
        assert labels[4] == "I-College"

    def test_longest_match_wins(self, annotator):
        # 'senior software engineer' should match as one position, not
        # leave 'software engineer' inside it.
        labels = labels_of(annotator, "worked as senior software engineer there")
        assert labels[2] == "B-Position"
        assert labels[3] == "I-Position"
        assert labels[4] == "I-Position"

    def test_out_of_dictionary_missed(self):
        small = DistantAnnotator(build_dictionaries(coverage=0.05, seed=0))
        recalled = 0
        for text in ["northfield university", "westlake college"]:
            labels = small.annotate(text.split()).labels
            recalled += labels[0] != "O"
        assert recalled < 2  # incomplete dictionaries miss mentions


class TestHeuristics:
    def test_name_bigram_at_head(self, annotator):
        labels = labels_of(annotator, "james smith software engineer")
        assert labels[0] == "B-Name"
        assert labels[1] == "I-Name"

    def test_name_bigram_outside_window_ignored(self, annotator):
        words = ["filler"] * 10 + ["james", "smith"]
        labels = annotator.annotate(words).labels
        assert labels[10] == "O"

    def test_company_suffix(self, annotator):
        small = DistantAnnotator(build_dictionaries(coverage=0.05, seed=0))
        labels = small.annotate("worked at zenyatta co. ltd".split()).labels
        assert labels[2] == "B-Company"
        assert labels[3] == "I-Company"
        assert labels[4] == "I-Company"

    def test_matched_mask_tracks_claims(self, annotator):
        annotation = annotator.annotate("james smith studied physics".split())
        assert annotation.matched[:2] == [True, True]
        assert annotation.matched[2] is False


class TestAnnotateExamples:
    def test_filters_entityless_blocks(self, annotator):
        examples = [
            NerExample(["nothing", "here"], ["O", "O"], "WorkExp"),
            NerExample(
                ["2019.07", "-", "2021.06"], ["O", "O", "O"], "WorkExp"
            ),
        ]
        out = annotate_examples(examples, annotator)
        assert len(out) == 1
        assert out[0].labels[0] == "B-Date"

    def test_keeps_all_without_filter(self, annotator):
        examples = [NerExample(["nothing", "here"], ["O", "O"], "WorkExp")]
        out = annotate_examples(examples, annotator, require_entity=False)
        assert len(out) == 1

    def test_distant_quality_shape(self):
        # High precision / partial recall against gold (the D&R profile).
        docs = ResumeGenerator(seed=11).batch(8)
        examples = extract_block_examples(docs)
        annotator = DistantAnnotator(
            build_dictionaries(coverage=0.5, seed=1, noise=0.3)
        )
        predicted = [annotator.annotate(e.words).labels for e in examples]
        gold = [e.labels for e in examples]
        score = entity_prf(gold, predicted)
        assert score.precision > score.recall
        assert score.precision > 0.8
        assert 0.3 < score.recall < 0.95
