"""Unit tests for the timing/profiling helpers in ``repro.eval.timing``."""

import time

import numpy as np
import pytest

from repro.eval import LatencyStats, StageProfile, measure_latency, time_per_resume


class TestLatencyStats:
    def test_percentiles_and_throughput(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        stats = LatencyStats.from_samples(samples)
        assert stats.count == 4
        assert stats.total_seconds == pytest.approx(1.0)
        assert stats.mean == pytest.approx(0.25)
        assert stats.p50 == pytest.approx(np.percentile(samples, 50))
        assert stats.p95 == pytest.approx(np.percentile(samples, 95))
        assert stats.throughput == pytest.approx(4.0)

    def test_unit_normalisation(self):
        # Two batched calls, 8 documents each: per-unit latency is sample/8.
        stats = LatencyStats.from_samples([0.8, 1.6], units=[8, 8])
        assert stats.mean == pytest.approx(0.15)
        assert stats.throughput == pytest.approx(16 / 2.4)

    def test_to_dict_round_trip(self):
        stats = LatencyStats.from_samples([0.5])
        d = stats.to_dict()
        assert d["count"] == 1
        assert d["p50_seconds"] == pytest.approx(0.5)
        assert d["throughput_per_second"] == pytest.approx(2.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([])
        with pytest.raises(ValueError):
            LatencyStats.from_samples([0.1, 0.2], units=[1])
        with pytest.raises(ValueError):
            LatencyStats.from_samples([0.1], units=[0])


class TestStageProfile:
    def test_accumulates_across_entries(self):
        profile = StageProfile()
        for _ in range(3):
            with profile.stage("encode"):
                time.sleep(0.001)
        with profile.stage("decode"):
            time.sleep(0.001)
        assert profile.calls == {"encode": 3, "decode": 1}
        assert profile.seconds["encode"] > 0
        breakdown = profile.breakdown()
        assert set(breakdown) == {"encode", "decode"}
        total_fraction = sum(entry["fraction"] for entry in breakdown.values())
        assert total_fraction == pytest.approx(1.0)

    def test_records_time_even_when_stage_raises(self):
        profile = StageProfile()
        with pytest.raises(RuntimeError):
            with profile.stage("encode"):
                raise RuntimeError("boom")
        assert profile.calls["encode"] == 1


class TestMeasureLatency:
    def test_counts_warmup_separately(self):
        calls = []
        stats = measure_latency(calls.append, ["a", "b"], repeats=2, warmup=1)
        # warmup re-runs the first input, then 2 repeats x 2 inputs.
        assert calls == ["a", "a", "b", "a", "b"]
        assert stats.count == 4

    def test_unit_counts_align(self):
        stats = measure_latency(
            lambda chunk: None, [[1, 2], [3]], repeats=1, warmup=0,
            unit_counts=[2, 1],
        )
        assert stats.count == 2
        with pytest.raises(ValueError):
            measure_latency(lambda chunk: None, [[1]], unit_counts=[1, 2])

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            measure_latency(lambda x: None, [])


class TestTimePerResume:
    def test_mean_over_documents(self):
        seen = []
        value = time_per_resume(seen.append, ["d1", "d2"], repeats=2, warmup=1)
        assert value > 0
        assert seen == ["d1", "d1", "d2", "d1", "d2"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            time_per_resume(lambda d: None, [])
