"""Tests for confusion-matrix analysis."""

import numpy as np
import pytest

from repro.eval import confusion_matrix, format_confusion, most_confused_pairs

TAGS = ["A", "B"]


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        gold = [["A", "B", None]]
        matrix = confusion_matrix(gold, gold, TAGS)
        np.testing.assert_array_equal(matrix, np.diag([1, 1, 1]))

    def test_off_diagonal_errors(self):
        gold = [["A", "A"]]
        pred = [["B", "A"]]
        matrix = confusion_matrix(gold, pred, TAGS)
        assert matrix[0, 1] == 1  # gold A predicted B
        assert matrix[0, 0] == 1

    def test_unknown_tags_fold_into_outside(self):
        matrix = confusion_matrix([["Z"]], [["A"]], TAGS)
        assert matrix[2, 0] == 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([["A"]], [["A", "B"]], TAGS)

    def test_format_confusion(self):
        matrix = confusion_matrix([["A", "B"]], [["A", "A"]], TAGS)
        text = format_confusion(matrix, TAGS)
        assert "gold \\ pred" in text
        assert "O" in text

    def test_format_checks_shape(self):
        with pytest.raises(ValueError):
            format_confusion(np.zeros((2, 2)), TAGS)

    def test_most_confused_pairs_sorted(self):
        gold = [["A"] * 5 + ["B"] * 2]
        pred = [["B"] * 5 + ["A"] * 2]
        pairs = most_confused_pairs(
            confusion_matrix(gold, pred, TAGS), TAGS, top=2
        )
        assert pairs[0] == ("A", "B", 5)
        assert pairs[1] == ("B", "A", 2)
