"""Tests for area metrics, entity metrics, timing and reporting."""

import numpy as np
import pytest

from repro.corpus import ResumeGenerator
from repro.docmodel import BLOCK_SCHEME, ENTITY_SCHEME
from repro.eval import (
    AreaEvaluation,
    PrfScore,
    area_prf_by_tag,
    area_prf_micro,
    entity_prf,
    entity_prf_by_tag,
    format_prf_table,
    format_stats_table,
    format_table,
    time_per_resume,
    token_accuracy,
)


class TestPrfScore:
    def test_from_counts(self):
        score = PrfScore.from_counts(8, 10, 16)
        assert score.precision == 0.8
        assert score.recall == 0.5
        assert score.f1 == pytest.approx(2 * 0.8 * 0.5 / 1.3)

    def test_zero_denominators(self):
        score = PrfScore.from_counts(0, 0, 0)
        assert score.precision == score.recall == score.f1 == 0.0


class TestEntityPrf:
    def test_perfect(self):
        labels = [["B-Name", "I-Name", "O", "B-Date"]]
        score = entity_prf(labels, labels)
        assert score.f1 == 1.0
        assert score.true_positives == 2

    def test_boundary_mismatch_counts_twice(self):
        gold = [["B-Name", "I-Name", "O"]]
        pred = [["B-Name", "O", "O"]]
        score = entity_prf(gold, pred)
        assert score.true_positives == 0
        assert score.predicted == 1
        assert score.gold == 1

    def test_tag_mismatch(self):
        gold = [["B-Name"]]
        pred = [["B-Date"]]
        assert entity_prf(gold, pred).f1 == 0.0

    def test_by_tag_separates(self):
        gold = [["B-Name", "O", "B-Date"]]
        pred = [["B-Name", "O", "O"]]
        by_tag = entity_prf_by_tag(gold, pred)
        assert by_tag["Name"].f1 == 1.0
        assert by_tag["Date"].recall == 0.0

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            entity_prf([["O"]], [])

    def test_unknown_labels_treated_as_outside(self):
        gold = [["B-Name"]]
        pred = [["B-Banana"]]
        score = entity_prf(gold, pred)
        assert score.predicted == 0

    def test_token_accuracy(self):
        gold = [["O", "B-Name"], ["O"]]
        pred = [["O", "O"], ["O"]]
        assert token_accuracy(gold, pred) == pytest.approx(2 / 3)

    def test_token_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            token_accuracy([["O", "O"]], [["O"]])


class _ConstantPredictor:
    def __init__(self, tag):
        self.tag = tag

    def predict_token_tags(self, document):
        return [self.tag] * document.num_tokens


class _OraclePredictor:
    def predict_token_tags(self, document):
        return [t or "O" for t in document.token_block_tags()]


class TestAreaMetrics:
    @pytest.fixture(scope="class")
    def docs(self):
        return ResumeGenerator(seed=55).batch(2)

    def test_oracle_scores_one(self, docs):
        evaluation = AreaEvaluation(docs)
        scores = evaluation.evaluate(_OraclePredictor())
        for tag, score in scores.items():
            assert score.f1 == pytest.approx(1.0), tag

    def test_constant_predictor_partial(self, docs):
        evaluation = AreaEvaluation(docs)
        scores = evaluation.evaluate(_ConstantPredictor("WorkExp"))
        assert scores["WorkExp"].recall == pytest.approx(1.0)
        assert scores["WorkExp"].precision < 1.0
        assert scores["PInfo"].recall == 0.0

    def test_micro_average(self, docs):
        evaluation = AreaEvaluation(docs)
        micro = evaluation.evaluate_micro(_OraclePredictor())
        assert micro.f1 == pytest.approx(1.0)

    def test_misaligned_raises(self, docs):
        with pytest.raises(ValueError):
            area_prf_by_tag(docs, [["WorkExp"]] * 2, [["WorkExp"]] * 2)

    def test_weights_by_area(self):
        # One big token (area 4x) + one small token, different tags: getting
        # only the big one right yields precision above token-count 50%.
        from repro.docmodel import BBox, Page, ResumeDocument, Sentence, Token

        big = Token("big", BBox(0, 0, 40, 20), 1, block_tag="Title", block_id=0)
        small = Token("s", BBox(0, 30, 10, 40), 1, block_tag="PInfo", block_id=1)
        doc = ResumeDocument(
            "d", [Page(1)], [Sentence([big], 1), Sentence([small], 1)]
        )
        gold = [["Title", "PInfo"]]
        pred = [["Title", "Title"]]
        scores = area_prf_by_tag([doc], gold, pred)
        big_area = 800.0
        small_area = 100.0
        assert scores["Title"].precision == pytest.approx(
            big_area / (big_area + small_area)
        )


class TestTiming:
    def test_returns_positive_average(self):
        docs = ResumeGenerator(seed=5).batch(2)
        calls = []
        average = time_per_resume(lambda d: calls.append(d), docs, repeats=2)
        assert average >= 0
        # warmup (1) + repeats * len(docs)
        assert len(calls) == 1 + 2 * 2

    def test_empty_documents_raise(self):
        with pytest.raises(ValueError):
            time_per_resume(lambda d: None, [])


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_prf_table(self):
        results = {
            "Ours": {"PInfo": PrfScore(0.9, 0.8, 0.85)},
            "BERT": {"PInfo": PrfScore(0.5, 0.4, 0.45)},
        }
        text = format_prf_table(results, ["PInfo", "Missing"])
        assert "85.00 (80.00 / 90.00)" in text
        assert "-" in text  # missing tag renders as dash

    def test_format_prf_table_extra_rows(self):
        results = {"Ours": {"PInfo": PrfScore(1, 1, 1)}}
        text = format_prf_table(
            results, ["PInfo"], extra_rows={"Time/Resume": {"Ours": "0.27s"}}
        )
        assert "Time/Resume" in text
        assert "0.27s" in text

    def test_format_stats_table(self):
        text = format_stats_table(
            {"train": {"# of samples": 100, "avg tokens": 12.5}},
            title="Table I",
        )
        assert "Table I" in text
        assert "100" in text
        assert "12.50" in text
