"""Round-trip tests for model persistence."""

import numpy as np
import pytest

from repro.core import (
    BlockClassifier,
    Featurizer,
    HierarchicalEncoder,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator, build_ner_corpus
from repro.ner import NerConfig, NerTagger
from repro.persistence import (
    load_block_classifier,
    load_ner_tagger,
    load_parser,
    save_block_classifier,
    save_ner_tagger,
    save_parser,
)
from repro.pipeline import ResumeParser
from repro.text import WordPieceTokenizer


@pytest.fixture(scope="module")
def world():
    docs = ResumeGenerator(seed=99, content_config=ContentConfig.tiny()).batch(3)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in docs for s in d.sentences), vocab_size=400, min_frequency=1
    )
    config = ResuFormerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32, sentence_layers=1, sentence_heads=2,
        document_layers=1, document_heads=2, visual_proj_dim=8, dropout=0.0,
    )
    classifier = BlockClassifier(
        HierarchicalEncoder(config, rng=np.random.default_rng(1)),
        Featurizer(tokenizer, config),
        lstm_hidden=16,
        rng=np.random.default_rng(2),
    )
    ner_config = NerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32, layers=1, heads=2, lstm_hidden=16, dropout=0.0,
    )
    tagger = NerTagger(ner_config, tokenizer, rng=np.random.default_rng(3))
    return docs, classifier, tagger


class TestBlockClassifierPersistence:
    def test_roundtrip_predictions_identical(self, world, tmp_path):
        docs, classifier, _ = world
        path = str(tmp_path / "clf")
        save_block_classifier(classifier, path)
        restored = load_block_classifier(path)
        assert restored.predict(docs[0]) == classifier.predict(docs[0])

    def test_wrong_kind_rejected(self, world, tmp_path):
        docs, _, tagger = world
        path = str(tmp_path / "ner")
        save_ner_tagger(tagger, path)
        with pytest.raises(ValueError):
            load_block_classifier(path)


class TestNerTaggerPersistence:
    def test_roundtrip_predictions_identical(self, world, tmp_path):
        _, _, tagger = world
        corpus = build_ner_corpus(
            num_train_docs=2, num_validation_docs=1, num_test_docs=1, seed=5
        )
        path = str(tmp_path / "ner")
        save_ner_tagger(tagger, path)
        restored = load_ner_tagger(path)
        assert restored.predict(corpus.test[:2]) == tagger.predict(corpus.test[:2])

    def test_wrong_kind_rejected(self, world, tmp_path):
        _, classifier, _ = world
        path = str(tmp_path / "clf")
        save_block_classifier(classifier, path)
        with pytest.raises(ValueError):
            load_ner_tagger(path)


class TestParserPersistence:
    def test_full_parser_roundtrip(self, world, tmp_path):
        docs, classifier, tagger = world
        parser = ResumeParser(classifier, tagger)
        path = str(tmp_path / "parser")
        save_parser(parser, path)
        restored = load_parser(path)
        original = parser.parse(docs[1]).to_dict()
        reloaded = restored.parse(docs[1]).to_dict()
        assert original == reloaded

    def test_parser_without_ner(self, world, tmp_path):
        docs, classifier, _ = world
        parser = ResumeParser(classifier, None)
        path = str(tmp_path / "parser2")
        save_parser(parser, path)
        restored = load_parser(path)
        assert restored.ner_tagger is None
        assert restored.parse(docs[2]).blocks is not None
