"""Tests for the document model and token->sentence segmentation."""

import pytest

from repro.docmodel import (
    BLOCK_SCHEME,
    BBox,
    Page,
    ResumeDocument,
    SegmentationConfig,
    Sentence,
    Token,
    segment_tokens,
)


def make_token(word, x0, y0, page=1, width=None, height=10, **kwargs):
    width = width if width is not None else 8 * len(word)
    return Token(word, BBox(x0, y0, x0 + width, y0 + height), page, **kwargs)


def row_tokens(words, y, page=1, gap=4, **kwargs):
    tokens = []
    x = 50
    for word in words:
        token = make_token(word, x, y, page=page, **kwargs)
        tokens.append(token)
        x = token.bbox.x1 + gap
    return tokens


class TestSentence:
    def test_requires_tokens(self):
        with pytest.raises(ValueError):
            Sentence([], page=1)

    def test_text_and_bbox(self):
        sentence = Sentence(row_tokens(["hello", "world"], y=100), page=1)
        assert sentence.text == "hello world"
        box = sentence.bbox
        assert box.x0 == 50
        assert box.y0 == 100

    def test_majority_block(self):
        tokens = row_tokens(["a", "b", "c"], y=0)
        for t in tokens[:2]:
            t.block_tag, t.block_id = "WorkExp", 3
        tokens[2].block_tag, tokens[2].block_id = "EduExp", 1
        sentence = Sentence(tokens, page=1)
        assert sentence.majority_block() == ("WorkExp", 3)

    def test_majority_block_empty(self):
        sentence = Sentence(row_tokens(["a"], y=0), page=1)
        assert sentence.majority_block() == (None, None)

    def test_style_aggregates(self):
        tokens = row_tokens(["a", "b"], y=0, font_size=12.0)
        tokens[0].bold = True
        sentence = Sentence(tokens, page=1)
        assert sentence.mean_font_size == 12.0
        assert sentence.bold_fraction == 0.5


class TestSegmentation:
    def test_single_row_single_sentence(self):
        sentences = segment_tokens(row_tokens(["john", "doe"], y=100))
        assert len(sentences) == 1
        assert sentences[0].text == "john doe"

    def test_rows_split_by_y(self):
        tokens = row_tokens(["line", "one"], y=100) + row_tokens(["line", "two"], y=130)
        sentences = segment_tokens(tokens)
        assert [s.text for s in sentences] == ["line one", "line two"]

    def test_large_gap_splits_columns(self):
        # Two-column layout: big horizontal gap must split the row.
        left = make_token("left", 50, 100)
        right = make_token("right", 400, 100)
        sentences = segment_tokens([left, right])
        assert [s.text for s in sentences] == ["left", "right"]

    def test_small_gap_keeps_together(self):
        a = make_token("first", 50, 100)
        b = make_token("second", a.bbox.x1 + 3, 100)
        sentences = segment_tokens([a, b])
        assert len(sentences) == 1

    def test_pages_processed_in_order(self):
        tokens = row_tokens(["page", "two"], y=50, page=2) + row_tokens(
            ["page", "one"], y=50, page=1
        )
        sentences = segment_tokens(tokens)
        assert [s.page for s in sentences] == [1, 2]

    def test_max_tokens_respected(self):
        config = SegmentationConfig(max_sentence_tokens=3)
        tokens = row_tokens([f"w{i}" for i in range(7)], y=10, gap=2)
        sentences = segment_tokens(tokens, config)
        assert max(len(s.tokens) for s in sentences) <= 3
        assert sum(len(s.tokens) for s in sentences) == 7

    def test_out_of_order_input_sorted(self):
        tokens = row_tokens(["a", "b", "c"], y=10, gap=2)
        sentences = segment_tokens(list(reversed(tokens)))
        assert sentences[0].text == "a b c"

    def test_empty(self):
        assert segment_tokens([]) == []

    def test_tall_token_does_not_chain_rows(self):
        # A large-font token vertically overlapping two body rows must not
        # merge them (regression: greedy tail-anchored clustering drifted).
        top = row_tokens(["alpha", "beta"], y=78, height=10)
        tall = make_token("name", 400, 79, height=20)
        bottom = row_tokens(["gamma", "delta"], y=93, height=10)
        sentences = segment_tokens(top + [tall] + bottom)
        texts = [s.text for s in sentences]
        assert "alpha beta" in texts[0]
        assert any(s.text == "gamma delta" for s in sentences)
        # No sentence mixes the two body rows.
        for sentence in sentences:
            ys = {t.bbox.y0 for t in sentence.tokens if t.word != "name"}
            assert len(ys) <= 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SegmentationConfig(row_tolerance_factor=0)


class TestResumeDocument:
    def make_doc(self):
        s1 = Sentence(row_tokens(["resume", "title"], y=10), page=1)
        s2 = Sentence(row_tokens(["work", "at", "acme"], y=30), page=1)
        s3 = Sentence(row_tokens(["more", "work"], y=50), page=2)
        for t in s1.tokens:
            t.block_tag, t.block_id = "Title", 0
        for t in s2.tokens + s3.tokens:
            t.block_tag, t.block_id = "WorkExp", 1
        return ResumeDocument("doc-1", [Page(1), Page(2)], [s1, s2, s3])

    def test_counts(self):
        doc = self.make_doc()
        assert doc.num_pages == 2
        assert doc.num_sentences == 3
        assert doc.num_tokens == 7
        assert len(doc.tokens()) == 7

    def test_page_lookup(self):
        doc = self.make_doc()
        assert doc.page(2).number == 2
        with pytest.raises(KeyError):
            doc.page(9)

    def test_block_iob_labels(self):
        doc = self.make_doc()
        labels = BLOCK_SCHEME.decode(doc.block_iob_labels(BLOCK_SCHEME))
        assert labels == ["B-Title", "B-WorkExp", "I-WorkExp"]

    def test_unlabeled_sentences_get_outside(self):
        doc = self.make_doc()
        for t in doc.sentences[1].tokens:
            t.block_tag, t.block_id = None, None
        labels = BLOCK_SCHEME.decode(doc.block_iob_labels(BLOCK_SCHEME))
        assert labels[1] == "O"
        # After an O, the same block id restarts with B.
        assert labels[2] == "B-WorkExp"

    def test_token_block_tags(self):
        doc = self.make_doc()
        tags = doc.token_block_tags()
        assert tags[:2] == ["Title", "Title"]
        assert tags[2:] == ["WorkExp"] * 5
