"""Tests for IOB label schemes and span conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docmodel import (
    BLOCK_ENTITIES,
    BLOCK_SCHEME,
    BLOCK_TAGS,
    ENTITY_SCHEME,
    ENTITY_TAGS,
    IobScheme,
    iob_to_spans,
    spans_to_iob,
)


class TestScheme:
    def test_block_scheme_size(self):
        assert BLOCK_SCHEME.num_labels == 1 + 2 * len(BLOCK_TAGS)

    def test_entity_scheme_size(self):
        assert ENTITY_SCHEME.num_labels == 1 + 2 * len(ENTITY_TAGS)

    def test_outside_is_zero(self):
        assert BLOCK_SCHEME.outside_id == 0
        assert BLOCK_SCHEME.id_to_label(0) == "O"

    def test_begin_inside_adjacent(self):
        for tag in BLOCK_TAGS:
            assert BLOCK_SCHEME.inside_id(tag) == BLOCK_SCHEME.begin_id(tag) + 1

    def test_tag_of(self):
        assert BLOCK_SCHEME.tag_of(BLOCK_SCHEME.begin_id("WorkExp")) == "WorkExp"
        assert BLOCK_SCHEME.tag_of(0) == "O"

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            BLOCK_SCHEME.label_id("B-Nonsense")

    def test_encode_decode(self):
        labels = ["O", "B-PInfo", "I-PInfo"]
        assert BLOCK_SCHEME.decode(BLOCK_SCHEME.encode(labels)) == labels

    def test_block_entities_subset(self):
        for block, entities in BLOCK_ENTITIES.items():
            assert block in BLOCK_TAGS
            assert set(entities) <= set(ENTITY_TAGS)


class TestSpansToIob:
    def test_basic(self):
        ids = spans_to_iob(5, [(1, 3, "PInfo")], BLOCK_SCHEME)
        assert BLOCK_SCHEME.decode(ids) == ["O", "B-PInfo", "I-PInfo", "O", "O"]

    def test_adjacent_spans_get_two_b(self):
        ids = spans_to_iob(4, [(0, 2, "Title"), (2, 4, "Title")], BLOCK_SCHEME)
        assert BLOCK_SCHEME.decode(ids) == ["B-Title", "I-Title", "B-Title", "I-Title"]

    def test_overlap_raises(self):
        with pytest.raises(ValueError):
            spans_to_iob(5, [(0, 3, "PInfo"), (2, 4, "EduExp")], BLOCK_SCHEME)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            spans_to_iob(3, [(2, 5, "PInfo")], BLOCK_SCHEME)
        with pytest.raises(ValueError):
            spans_to_iob(3, [(2, 2, "PInfo")], BLOCK_SCHEME)


class TestIobToSpans:
    def test_roundtrip(self):
        spans = [(0, 2, "PInfo"), (3, 4, "EduExp")]
        ids = spans_to_iob(6, spans, BLOCK_SCHEME)
        assert iob_to_spans(ids, BLOCK_SCHEME) == spans

    def test_repairs_dangling_inside(self):
        ids = BLOCK_SCHEME.encode(["O", "I-PInfo", "I-PInfo", "O"])
        assert iob_to_spans(ids, BLOCK_SCHEME) == [(1, 3, "PInfo")]

    def test_tag_switch_without_b(self):
        ids = BLOCK_SCHEME.encode(["B-PInfo", "I-EduExp"])
        assert iob_to_spans(ids, BLOCK_SCHEME) == [(0, 1, "PInfo"), (1, 2, "EduExp")]

    def test_span_reaching_end(self):
        ids = BLOCK_SCHEME.encode(["O", "B-Awards", "I-Awards"])
        assert iob_to_spans(ids, BLOCK_SCHEME) == [(1, 3, "Awards")]

    def test_empty(self):
        assert iob_to_spans([], BLOCK_SCHEME) == []

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 5), st.sampled_from(BLOCK_TAGS)),
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip_nonoverlapping(self, raw):
        # Build non-overlapping spans deterministically from raw pieces.
        spans = []
        cursor = 0
        for offset, width, tag in raw:
            start = cursor + offset
            spans.append((start, start + width, tag))
            cursor = start + width
        length = (spans[-1][1] if spans else 0) + 2
        ids = spans_to_iob(length, spans, BLOCK_SCHEME)
        assert iob_to_spans(ids, BLOCK_SCHEME) == spans
