"""Tests for bounding-box geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docmodel import LAYOUT_SCALE, BBox, merge_boxes, normalize_coordinate


def boxes(max_extent=100.0):
    coord = st.floats(0, max_extent, allow_nan=False)
    return st.builds(
        lambda x0, y0, w, h: BBox(x0, y0, x0 + w, y0 + h),
        coord, coord,
        st.floats(0, 50), st.floats(0, 50),
    )


class TestBBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BBox(5, 0, 0, 5)
        with pytest.raises(ValueError):
            BBox(0, 5, 5, 0)

    def test_dimensions(self):
        box = BBox(10, 20, 40, 60)
        assert box.width == 30
        assert box.height == 40
        assert box.area == 1200
        assert box.center == (25, 40)

    def test_union(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(5, 5, 20, 8)
        assert a.union(b) == BBox(0, 0, 20, 10)

    def test_intersection_area(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(5, 5, 15, 15)
        assert a.intersection_area(b) == 25
        assert not a.overlaps(BBox(20, 20, 30, 30))

    def test_touching_boxes_do_not_overlap(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(10, 0, 20, 10)
        assert not a.overlaps(b)

    def test_normalized_range(self):
        box = BBox(0, 0, 612, 792).normalized(612, 792)
        assert box.to_tuple() == (0, 0, LAYOUT_SCALE, LAYOUT_SCALE)

    def test_layout_tuple(self):
        box = BBox(10, 20, 110, 40)
        assert box.layout_tuple() == (10, 20, 110, 40, 100, 20)

    @given(boxes(), boxes())
    @settings(max_examples=50, deadline=None)
    def test_property_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.x0 <= min(a.x0, b.x0)
        assert u.y1 >= max(a.y1, b.y1)
        assert u.area >= max(a.area, b.area)

    @given(boxes(), boxes())
    @settings(max_examples=50, deadline=None)
    def test_property_intersection_symmetric(self, a, b):
        assert a.intersection_area(b) == pytest.approx(b.intersection_area(a))


class TestNormalizeCoordinate:
    def test_clamps(self):
        assert normalize_coordinate(-5, 100) == 0
        assert normalize_coordinate(200, 100) == LAYOUT_SCALE

    def test_rounding(self):
        assert normalize_coordinate(50, 100) == 500

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            normalize_coordinate(1, 0)

    @given(st.floats(0, 612), st.floats(1, 2000))
    @settings(max_examples=50, deadline=None)
    def test_property_always_in_range(self, value, extent):
        out = normalize_coordinate(value, extent)
        assert 0 <= out <= LAYOUT_SCALE


class TestMergeBoxes:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            merge_boxes([])

    def test_single(self):
        box = BBox(1, 2, 3, 4)
        assert merge_boxes([box]) == box

    def test_many(self):
        merged = merge_boxes([BBox(0, 0, 1, 1), BBox(5, 5, 6, 6), BBox(2, -1, 3, 0)])
        assert merged == BBox(0, -1, 6, 6)
