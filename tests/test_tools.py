"""Tests for the command-line tools."""

import json

import pytest

from repro.tools import build_cli, main


class TestCli:
    def test_generate_jsonl(self, capsys):
        assert main(["generate", "--count", "2", "--seed", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        payload = json.loads(lines[0])
        assert payload["pages"] >= 1
        assert payload["sentences"]

    def test_render_shows_blocks(self, capsys):
        assert main(["render", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "page 1" in out
        assert "PInfo" in out

    def test_train_then_parse(self, tmp_path, capsys):
        model_dir = str(tmp_path / "model")
        assert main([
            "train", "--output", model_dir, "--documents", "8",
            "--pretrain-epochs", "0", "--epochs", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["parse", "--model", model_dir, "--seed", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "blocks" in payload

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_cli().parse_args(["bogus"])
