"""Tests for the intra-block NER baselines."""

import numpy as np
import pytest

from repro.baselines import (
    AutoNer,
    BertBiLstmCrf,
    BertBiLstmFuzzyCrf,
    DrMatch,
    NerBaselineTrainer,
)
from repro.corpus import NerExample, build_ner_corpus
from repro.docmodel import ENTITY_SCHEME
from repro.ner import (
    DistantAnnotator,
    NerConfig,
    annotate_examples,
    build_dictionaries,
)
from repro.text import WordPieceTokenizer


@pytest.fixture(scope="module")
def setting():
    corpus = build_ner_corpus(
        num_train_docs=8, num_validation_docs=2, num_test_docs=3, seed=41
    )
    annotator = DistantAnnotator(build_dictionaries(coverage=0.6, seed=3, noise=0.3))
    train = annotate_examples(corpus.train, annotator)
    tokenizer = WordPieceTokenizer.train(
        [e.text for e in train], vocab_size=400, min_frequency=1
    )
    config = NerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        layers=1,
        heads=2,
        lstm_hidden=16,
        dropout=0.0,
    )
    return corpus, train, annotator, tokenizer, config


class TestDrMatch:
    def test_predicts_labels(self, setting):
        corpus, _, annotator, *_ = setting
        model = DrMatch(annotator)
        predictions = model.predict(corpus.test[:3])
        for example, labels in zip(corpus.test[:3], predictions):
            assert len(labels) == len(example.words)

    def test_high_precision_profile(self, setting):
        from repro.eval import entity_prf

        corpus, _, annotator, *_ = setting
        model = DrMatch(annotator)
        predictions = model.predict(corpus.test)
        gold = [e.labels for e in corpus.test]
        score = entity_prf(gold, predictions)
        assert score.precision >= score.recall


class TestBertBiLstmCrf:
    def test_loss_and_predict(self, setting):
        corpus, train, _, tokenizer, config = setting
        model = BertBiLstmCrf(config, tokenizer, rng=np.random.default_rng(0))
        features = model.featurizer.featurize(train[:4])
        loss = model.loss(features)
        assert float(loss.data) > 0
        predictions = model.predict(corpus.test[:2])
        assert all(
            len(p) == len(e.words) for p, e in zip(predictions, corpus.test[:2])
        )

    def test_training_reduces_loss(self, setting):
        _, train, _, tokenizer, config = setting
        model = BertBiLstmCrf(config, tokenizer, rng=np.random.default_rng(1))
        trainer = NerBaselineTrainer(model, learning_rate=3e-3, seed=0)
        losses = trainer.fit(train[:12], epochs=3)
        assert losses[-1] < losses[0]


class TestBertBiLstmFuzzyCrf:
    def test_allowed_matrix_structure(self, setting):
        _, train, annotator, tokenizer, config = setting
        model = BertBiLstmFuzzyCrf(config, tokenizer, rng=np.random.default_rng(2))
        allowed = model.allowed_matrix(train[:3], annotator)
        assert allowed.shape[2] == ENTITY_SCHEME.num_labels
        # Matched positions are constrained to exactly one tag.
        example = train[0]
        annotation = annotator.annotate(example.words)
        for pos, is_matched in enumerate(annotation.matched[: allowed.shape[1]]):
            if is_matched:
                assert allowed[0, pos].sum() == 1
            else:
                assert allowed[0, pos].all()

    def test_training_reduces_loss(self, setting):
        _, train, annotator, tokenizer, config = setting
        model = BertBiLstmFuzzyCrf(config, tokenizer, rng=np.random.default_rng(3))
        trainer = NerBaselineTrainer(
            model, annotator=annotator, learning_rate=3e-3, seed=0
        )
        losses = trainer.fit(train[:12], epochs=3)
        assert losses[-1] < losses[0]

    def test_confident_o_words(self, setting):
        _, train, annotator, *_ = setting
        confident = BertBiLstmFuzzyCrf.build_confident_o(train, annotator)
        # Frequent plain words are confidently O; matched entity words never.
        assert "the" in confident or "and" in confident
        for example in train[:5]:
            annotation = annotator.annotate(example.words)
            for word, is_matched in zip(example.words, annotation.matched):
                if is_matched:
                    assert word.lower() not in confident

    def test_confident_o_constrains_allowed_matrix(self, setting):
        _, train, annotator, tokenizer, config = setting
        model = BertBiLstmFuzzyCrf(config, tokenizer, rng=np.random.default_rng(9))
        confident = BertBiLstmFuzzyCrf.build_confident_o(train, annotator)
        allowed = model.allowed_matrix(train[:2], annotator, confident_o=confident)
        example = train[0]
        annotation = annotator.annotate(example.words)
        for pos, word in enumerate(example.words[: allowed.shape[1]]):
            if not annotation.matched[pos] and word.lower() in confident:
                assert allowed[0, pos].sum() == 1
                assert allowed[0, pos, ENTITY_SCHEME.outside_id]

    def test_fuzzy_requires_annotator(self, setting):
        _, train, _, tokenizer, config = setting
        model = BertBiLstmFuzzyCrf(config, tokenizer, rng=np.random.default_rng(4))
        trainer = NerBaselineTrainer(model, annotator=None, seed=0)
        with pytest.raises(ValueError):
            trainer.fit(train[:4], epochs=1)


class TestAutoNer:
    def test_supervision_marks_unknown_boundaries(self, setting):
        _, train, annotator, tokenizer, config = setting
        model = AutoNer(config, tokenizer, rng=np.random.default_rng(5))
        example = NerExample(
            ["james", "smith", "mystery", "thing", "2019.07"],
            ["O"] * 5,
            "PInfo",
        )
        features, boundary, b_mask, types, t_mask = model.supervision(
            [example], annotator
        )
        annotation = annotator.annotate(example.words)
        # Boundary between two unmatched words carries no supervision.
        for pos in range(4):
            if not annotation.matched[pos] and not annotation.matched[pos + 1]:
                assert b_mask[0, pos] == 0.0

    def test_tie_inside_entity(self, setting):
        _, _, annotator, tokenizer, config = setting
        model = AutoNer(config, tokenizer, rng=np.random.default_rng(6))
        example = NerExample(
            ["2019.07", "-", "2021.06"], ["O"] * 3, "WorkExp"
        )
        _, boundary, b_mask, *_ = model.supervision([example], annotator)
        assert b_mask[0, 0] == 1.0
        assert boundary[0, 0] == AutoNer.TIE

    def test_predict_interfaces(self, setting):
        corpus, _, _, tokenizer, config = setting
        model = AutoNer(config, tokenizer, rng=np.random.default_rng(7))
        predictions = model.predict(corpus.test[:2])
        for example, labels in zip(corpus.test[:2], predictions):
            assert len(labels) == len(example.words)
            assert all(l == "O" or l[:2] in ("B-", "I-") for l in labels)

    def test_training_reduces_loss(self, setting):
        _, train, annotator, tokenizer, config = setting
        model = AutoNer(config, tokenizer, rng=np.random.default_rng(8))
        trainer = NerBaselineTrainer(
            model, annotator=annotator, learning_rate=3e-3, seed=0
        )
        losses = trainer.fit(train[:12], epochs=3)
        assert losses[-1] < losses[0]
