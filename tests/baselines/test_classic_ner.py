"""Tests for the classic Word2Vec+BiLSTM+CRF resume extractor."""

import numpy as np
import pytest

from repro.baselines import Word2VecBiLstmCrf
from repro.corpus import build_ner_corpus
from repro.ner import DistantAnnotator, annotate_examples, build_dictionaries
from repro.text import Vocab, Word2VecConfig, train_word2vec


@pytest.fixture(scope="module")
def setting():
    corpus = build_ner_corpus(
        num_train_docs=8, num_validation_docs=2, num_test_docs=2, seed=61
    )
    annotator = DistantAnnotator(build_dictionaries(coverage=0.7, seed=2))
    train = annotate_examples(corpus.train, annotator)
    vocab = Vocab(
        sorted({w.lower() for e in train for w in e.words})
    )
    return corpus, train, vocab


class TestWord2VecBiLstmCrf:
    def test_predict_shapes(self, setting):
        corpus, train, vocab = setting
        model = Word2VecBiLstmCrf(vocab, rng=np.random.default_rng(0))
        predictions = model.predict(corpus.test[:3])
        for example, labels in zip(corpus.test[:3], predictions):
            assert len(labels) == len(example.words)

    def test_training_reduces_loss(self, setting):
        _, train, vocab = setting
        model = Word2VecBiLstmCrf(vocab, rng=np.random.default_rng(1))
        losses = model.fit(train[:20], epochs=3, learning_rate=3e-3)
        assert losses[-1] < losses[0]

    def test_pretrained_vectors_loaded(self, setting):
        _, train, vocab = setting
        w2v = train_word2vec(
            (e.text for e in train),
            Word2VecConfig(dim=64, epochs=1, seed=0),
            vocab=vocab,
        )
        model = Word2VecBiLstmCrf(
            vocab, pretrained=w2v, rng=np.random.default_rng(2)
        )
        np.testing.assert_allclose(model.embedding.weight.data, w2v.vectors)

    def test_pretrained_shape_mismatch_rejected(self, setting):
        _, train, vocab = setting
        from repro.text import Word2VecModel

        tiny = Word2VecModel(vocab, np.zeros((len(vocab), 8)))
        with pytest.raises(ValueError):
            Word2VecBiLstmCrf(vocab, embedding_dim=64, pretrained=tiny)

    def test_oov_words_share_unk(self, setting):
        corpus, _, vocab = setting
        model = Word2VecBiLstmCrf(vocab, rng=np.random.default_rng(3))
        from repro.corpus import NerExample

        example = NerExample(["qqqq", "zzzz"], ["O", "O"], "PInfo")
        ids, _, _ = model.encode_batch([example])
        assert ids[0, 0] == ids[0, 1] == vocab.unk_id
