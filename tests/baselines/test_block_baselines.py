"""Tests for the block classification baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BertCrf,
    HiBertCrf,
    LayoutXlmLike,
    RobertaGcn,
    TokenTaggerConfig,
    TokenTaggerTrainer,
    build_spatial_graph,
    normalized_adjacency,
    token_block_labels,
    window_document,
)
from repro.core import Featurizer, ResuFormerConfig
from repro.corpus import ContentConfig, ResumeGenerator
from repro.docmodel import BLOCK_SCHEME
from repro.text import WordPieceTokenizer


@pytest.fixture(scope="module")
def docs():
    return ResumeGenerator(seed=31, content_config=ContentConfig.tiny()).batch(4)


@pytest.fixture(scope="module")
def tokenizer(docs):
    return WordPieceTokenizer.train(
        [s.text for d in docs for s in d.sentences], vocab_size=400, min_frequency=1
    )


def make_config(tokenizer, **kwargs):
    return TokenTaggerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        layers=1,
        heads=2,
        window_words=48,
        dropout=0.0,
        **kwargs,
    )


class TestWindowing:
    def test_windows_cover_all_pieces(self, docs, tokenizer):
        config = make_config(tokenizer)
        doc = docs[0]
        windows = window_document(doc, tokenizer, config)
        total = sum(len(w.word_ids) for w in windows)
        expected = sum(
            len(tokenizer.tokenize_word(t.word.lower())) for t in doc.tokens()
        )
        assert total == expected
        assert all(len(w.word_ids) <= config.window_words for w in windows)

    def test_word_index_spans_document(self, docs, tokenizer):
        config = make_config(tokenizer)
        doc = docs[0]
        windows = window_document(doc, tokenizer, config)
        seen = np.concatenate([w.word_index for w in windows])
        assert seen.min() == 0
        assert seen.max() == doc.num_tokens - 1

    def test_overlapping_stride_covers_tail(self, docs, tokenizer):
        config = make_config(tokenizer)
        doc = docs[0]
        total_pieces = sum(
            len(tokenizer.tokenize_word(t.word.lower())) for t in doc.tokens()
        )
        windows = window_document(doc, tokenizer, config, stride=24)
        covered = set()
        for w in windows:
            covered.update(w.word_index.tolist())
        assert covered == set(range(doc.num_tokens))
        assert len(windows) >= (total_pieces + 47) // 48  # >= non-overlap count

    def test_labels_align_with_pieces(self, docs, tokenizer):
        config = make_config(tokenizer)
        windows = window_document(
            docs[0], tokenizer, config, with_labels=True
        )
        for window in windows:
            assert window.labels is not None
            assert len(window.labels) == len(window.word_ids)

    def test_token_block_labels_expand_sentences(self, docs):
        doc = docs[0]
        labels = token_block_labels(doc)
        assert len(labels) == doc.num_tokens
        # The first token of an annotated document starts a block.
        assert BLOCK_SCHEME.id_to_label(labels[0]).startswith("B-")

    def test_continuation_pieces_get_inside(self, docs, tokenizer):
        config = make_config(tokenizer)
        windows = window_document(docs[0], tokenizer, config, with_labels=True)
        flat_labels = np.concatenate([w.labels for w in windows])
        flat_words = np.concatenate([w.word_index for w in windows])
        for i in range(1, len(flat_labels)):
            if flat_words[i] == flat_words[i - 1]:  # continuation piece
                label = BLOCK_SCHEME.id_to_label(int(flat_labels[i]))
                assert not label.startswith("B-")


class TestTokenTaggers:
    def test_bert_crf_predict_interfaces(self, docs, tokenizer):
        model = BertCrf(make_config(tokenizer), tokenizer, rng=np.random.default_rng(0))
        doc = docs[0]
        token_tags = model.predict_token_tags(doc)
        assert len(token_tags) == doc.num_tokens
        sentence_labels = model.predict(doc)
        assert len(sentence_labels) == doc.num_sentences
        assert all(
            l == "O" or l in BLOCK_SCHEME.labels for l in sentence_labels
        )

    def test_bert_crf_has_no_multimodal_channels(self, tokenizer):
        model = BertCrf(make_config(tokenizer), tokenizer, rng=np.random.default_rng(0))
        assert model.layout_embedding is None
        assert model.visual_project is None

    def test_layoutxlm_is_multimodal(self, tokenizer):
        model = LayoutXlmLike(
            make_config(tokenizer), tokenizer, rng=np.random.default_rng(1)
        )
        assert model.layout_embedding is not None
        assert model.visual_project is not None

    def test_training_reduces_loss(self, docs, tokenizer):
        model = BertCrf(make_config(tokenizer), tokenizer, rng=np.random.default_rng(2))
        trainer = TokenTaggerTrainer(model, learning_rate=3e-3, seed=0)
        losses = trainer.fit(docs[:2], epochs=3)
        assert losses[-1] < losses[0]

    def test_layoutxlm_mlm_pretraining_runs(self, docs, tokenizer):
        model = LayoutXlmLike(
            make_config(tokenizer), tokenizer, rng=np.random.default_rng(3)
        )
        losses = model.pretrain_mlm(docs[:1], epochs=2, learning_rate=1e-3)
        assert losses
        assert losses[-1] < losses[0] * 1.5  # moving, not exploding

    def test_sentence_vote_iob_consistency(self, docs, tokenizer):
        model = BertCrf(make_config(tokenizer), tokenizer, rng=np.random.default_rng(4))
        labels = model.predict(docs[0])
        previous_tag = None
        for label in labels:
            if label.startswith("I-"):
                assert previous_tag == label[2:]
            previous_tag = None if label == "O" else label[2:]

    def test_invalid_config_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            TokenTaggerConfig(
                vocab_size=10, hidden_dim=30, heads=4
            ).validate()


class TestRobertaGcn:
    def test_spatial_graph_knn(self):
        layout = np.zeros((5, 7), dtype=int)
        layout[:, 0] = [0, 10, 20, 30, 40]
        layout[:, 2] = layout[:, 0] + 2
        graph = build_spatial_graph(layout, k=2)
        assert graph.number_of_nodes() == 5
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 4)

    def test_single_node_graph(self):
        graph = build_spatial_graph(np.zeros((1, 7), dtype=int))
        assert graph.number_of_nodes() == 1
        adjacency = normalized_adjacency(graph)
        np.testing.assert_allclose(adjacency, [[1.0]])

    def test_normalized_adjacency_rows(self):
        layout = np.zeros((4, 7), dtype=int)
        layout[:, 0] = [0, 5, 10, 15]
        adjacency = normalized_adjacency(build_spatial_graph(layout, k=1))
        assert adjacency.shape == (4, 4)
        # Symmetric normalisation keeps the matrix symmetric.
        np.testing.assert_allclose(adjacency, adjacency.T)

    def test_gcn_predicts(self, docs, tokenizer):
        model = RobertaGcn(
            make_config(tokenizer), tokenizer, rng=np.random.default_rng(5)
        )
        tags = model.predict_token_tags(docs[0])
        assert len(tags) == docs[0].num_tokens

    def test_gcn_supports_mlm_pretraining(self, docs, tokenizer):
        model = RobertaGcn(
            make_config(tokenizer), tokenizer, rng=np.random.default_rng(9)
        )
        losses = model.pretrain_mlm(docs[:1], epochs=1, learning_rate=1e-3)
        assert losses
        assert hasattr(model, "mlm_head")

    def test_gcn_trains(self, docs, tokenizer):
        model = RobertaGcn(
            make_config(tokenizer), tokenizer, rng=np.random.default_rng(6)
        )
        losses = TokenTaggerTrainer(model, learning_rate=3e-3, seed=0).fit(
            docs[:2], epochs=2
        )
        assert losses[-1] < losses[0]


class TestHiBertCrf:
    @pytest.fixture(scope="class")
    def model(self, tokenizer):
        config = ResuFormerConfig(
            vocab_size=len(tokenizer.vocab),
            hidden_dim=32,
            sentence_layers=1,
            sentence_heads=2,
            document_layers=1,
            document_heads=2,
            visual_proj_dim=8,
            dropout=0.0,
        )
        return HiBertCrf(
            Featurizer(tokenizer, config), rng=np.random.default_rng(7)
        )

    def test_predict_shapes(self, model, docs):
        labels = model.predict(docs[0])
        assert len(labels) == docs[0].num_sentences
        token_tags = model.predict_token_tags(docs[0])
        assert len(token_tags) == docs[0].num_tokens

    def test_text_only_no_visual_parameters(self, model):
        names = [name for name, _ in model.named_parameters()]
        assert not any("visual" in n for n in names)
        assert not any("layout" in n for n in names)

    def test_loss_trains(self, model, docs):
        from repro.nn import AdamW, ParamGroup

        features = model.featurizer.featurize(docs[0])
        labels = docs[0].block_iob_labels(BLOCK_SCHEME)
        optimizer = AdamW([ParamGroup(model.parameters(), 3e-3)])
        first = None
        for _ in range(4):
            optimizer.zero_grad()
            loss = model.loss(features, labels)
            loss.backward()
            optimizer.step()
            first = first if first is not None else float(loss.data)
        assert float(loss.data) < first
