"""Shared fixtures for the data-parallel test battery.

Parity tests default to the in-process ``LocalRunner`` backend (fast,
deterministic); ``tests/parallel/test_pool.py`` exercises the real
spawn-based ``WorkerPool`` explicitly.
"""

import numpy as np
import pytest

from repro.core import Featurizer, HierarchicalEncoder, ResuFormerConfig
from repro.corpus import ContentConfig, ResumeGenerator
from repro.parallel import BACKEND_ENV
from repro.text import WordPieceTokenizer


@pytest.fixture()
def local_backend(monkeypatch):
    """Force the in-process runner regardless of worker count."""
    monkeypatch.setenv(BACKEND_ENV, "local")


@pytest.fixture(scope="session")
def tiny_docs():
    return ResumeGenerator(seed=7, content_config=ContentConfig.tiny()).batch(6)


@pytest.fixture(scope="session")
def tokenizer(tiny_docs):
    texts = [s.text for d in tiny_docs for s in d.sentences]
    return WordPieceTokenizer.train(texts, vocab_size=500, min_frequency=1)


@pytest.fixture(scope="session")
def config(tokenizer):
    # dropout must be 0.0: the 1-vs-N parity contract only holds for
    # deterministic forward passes (see docs/API.md section 14).
    return ResuFormerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        sentence_layers=1,
        sentence_heads=2,
        document_layers=1,
        document_heads=2,
        visual_proj_dim=8,
        dropout=0.0,
    )


@pytest.fixture()
def encoder(config):
    return HierarchicalEncoder(config, rng=np.random.default_rng(3))


@pytest.fixture()
def featurizer(tokenizer, config):
    return Featurizer(tokenizer, config)
