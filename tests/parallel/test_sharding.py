"""Deterministic sharding contract: contiguous, balanced, order-preserving."""

import pytest

from repro.parallel import shard_evenly, shard_imbalance


def test_shard_evenly_partitions_in_order():
    items = list(range(10))
    shards = shard_evenly(items, 3)
    assert len(shards) == 3
    # Concatenation restores the original order exactly.
    assert [x for shard in shards for x in shard] == items
    # Contiguous balanced split: first len % n shards get the extra item.
    assert [len(s) for s in shards] == [4, 3, 3]


def test_shard_evenly_more_shards_than_items():
    shards = shard_evenly([1, 2], 4)
    assert [len(s) for s in shards] == [1, 1, 0, 0]
    assert [x for shard in shards for x in shard] == [1, 2]


def test_shard_evenly_single_shard_is_identity():
    items = ["a", "b", "c"]
    assert shard_evenly(items, 1) == [items]


def test_shard_evenly_rejects_nonpositive_count():
    with pytest.raises(ValueError):
        shard_evenly([1], 0)


def test_shard_evenly_deterministic():
    items = list(range(17))
    assert shard_evenly(items, 4) == shard_evenly(items, 4)


def test_shard_imbalance_balanced_is_one():
    assert shard_imbalance([[1, 2], [3, 4]]) == pytest.approx(1.0)


def test_shard_imbalance_detects_skew():
    # max = 3, mean = 1.0 -> ratio 3.0
    assert shard_imbalance([[1, 2, 3], [4], [], []]) == pytest.approx(3.0)


def test_shard_imbalance_all_empty():
    assert shard_imbalance([[], []]) == 0.0
