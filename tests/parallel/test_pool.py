"""Real spawn-based ``WorkerPool``: dispatch, reduce, BLAS caps, failure.

These tests fork actual processes (2 workers, trivial payloads) so they
stay fast while still covering what the in-process ``LocalRunner`` parity
suite cannot: the spawn handshake, shared-memory slab plumbing across
process boundaries, the single-thread BLAS discipline, and clean shutdown
with no orphaned workers when a shard raises.
"""

import os

import numpy as np
import pytest

from repro.parallel import (
    BACKEND_ENV,
    LocalRunner,
    ParallelWorkerError,
    WorkerPool,
    init_probe_worker,
    make_runner,
)


@pytest.fixture()
def pool():
    pool = WorkerPool(2, init_probe_worker, {}, param_size=4)
    yield pool
    pool.close()


class TestWorkerPool:
    def test_echo_round_trip(self, pool):
        results = pool.run("echo", [{"tag": "a"}, {"tag": "b"}])
        assert results == [
            {"worker": 0, "payload": {"tag": "a"}},
            {"worker": 1, "payload": {"tag": "b"}},
        ]

    def test_workers_are_separate_processes(self, pool):
        pids = pool.run("pid", [{}, {}])
        assert len(set(pids)) == 2
        assert os.getpid() not in pids

    def test_blas_threads_pinned_to_one(self, monkeypatch):
        # Even when the parent environment asks for many BLAS threads,
        # every worker must boot with the cap already at 1 (the pool
        # overrides the env during spawn, and _worker_main re-pins).
        monkeypatch.setenv("OMP_NUM_THREADS", "8")
        monkeypatch.setenv("OPENBLAS_NUM_THREADS", "8")
        pool = WorkerPool(2, init_probe_worker, {}, param_size=1)
        try:
            for info in pool.ready_info:
                assert set(info["blas"].values()) == {"1"}
            for report in pool.run("blas", [{}, {}]):
                assert set(report.values()) == {"1"}
            # The parent's own environment is restored after boot.
            assert os.environ["OMP_NUM_THREADS"] == "8"
        finally:
            pool.close()

    def test_reduce_sums_grad_slabs(self, pool):
        pool.run("fill", [{"value": 1.5}, {"value": 2.0}])
        np.testing.assert_allclose(pool.reduce(), np.full(4, 3.5))
        np.testing.assert_allclose(pool.reduce(total_weight=7.0), np.full(4, 0.5))

    def test_reduce_rejects_nonpositive_weight(self, pool):
        with pytest.raises(ValueError):
            pool.reduce(total_weight=0.0)

    def test_failure_raises_with_worker_and_shard(self):
        pool = WorkerPool(2, init_probe_worker, {}, param_size=1)
        with pytest.raises(ParallelWorkerError) as excinfo:
            pool.run(
                "fail",
                [{"indices": [0, 1], "message": "boom"}, {"indices": [2, 3]}],
            )
        error = excinfo.value
        assert error.task == "fail"
        assert error.shard in ([0, 1], [2, 3])
        assert "boom" in str(error) or "probe failure" in str(error)
        # The pool tore itself down: every worker is gone, none orphaned.
        for process in pool._processes:
            with pytest.raises(ValueError):
                process.is_alive()  # .close()d handles raise ValueError

    def test_silently_dead_worker_detected(self):
        # A worker that exits without posting a result (OOM kill, spawn
        # bootstrap failure) must surface as an error, not a parent that
        # blocks forever on the result queue.
        pool = WorkerPool(2, init_probe_worker, {}, param_size=1)
        with pytest.raises(ParallelWorkerError, match="died without reporting"):
            pool.run("die", [{"code": 3}, {"code": 3}])

    def test_run_after_close_rejected(self):
        pool = WorkerPool(2, init_probe_worker, {}, param_size=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run("echo", [{}, {}])

    def test_payload_count_must_match_workers(self, pool):
        with pytest.raises(ValueError):
            pool.run("echo", [{}])


class TestWorkerLiveness:
    """``_next_task``: the worker-side poll loop that replaces a bare
    blocking ``task_queue.get()`` (regression for the dead-parent hang —
    a worker must exit instead of blocking forever when the parent died
    without sending the stop sentinel)."""

    def test_queued_message_returned_immediately(self):
        import queue

        from repro.parallel.pool import _next_task

        tasks = queue.Queue()
        tasks.put(("echo", {"tag": "a"}))
        assert _next_task(tasks, lambda: True, poll_seconds=0.01) == (
            "echo",
            {"tag": "a"},
        )

    def test_dead_parent_with_empty_queue_stops(self):
        import queue

        from repro.parallel.pool import _next_task

        tasks = queue.Queue()
        assert _next_task(tasks, lambda: False, poll_seconds=0.01) is None

    def test_queued_work_drains_before_liveness_wins(self):
        # A message already in flight is processed even if the parent is
        # gone — the queue is checked before the liveness verdict.
        import queue

        from repro.parallel.pool import _next_task

        tasks = queue.Queue()
        tasks.put(("featurize", {"indices": [0]}))
        assert _next_task(tasks, lambda: False, poll_seconds=0.01) == (
            "featurize",
            {"indices": [0]},
        )

    def test_liveness_polled_until_parent_dies(self):
        import queue

        from repro.parallel.pool import _next_task

        verdicts = iter([True, True, False])
        tasks = queue.Queue()
        assert _next_task(tasks, lambda: next(verdicts), poll_seconds=0.01) is None


class TestMakeRunner:
    def test_single_worker_defaults_to_local(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        runner = make_runner(1, init_probe_worker, {}, 2)
        assert isinstance(runner, LocalRunner)
        runner.close()

    def test_env_forces_local_at_any_count(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "local")
        runner = make_runner(3, init_probe_worker, {}, 2)
        assert isinstance(runner, LocalRunner)
        assert runner.num_workers == 3
        runner.close()

    def test_env_forces_process_for_one_worker(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        runner = make_runner(1, init_probe_worker, {}, 2)
        assert isinstance(runner, WorkerPool)
        runner.close()

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "threads")
        with pytest.raises(ValueError):
            make_runner(2, init_probe_worker, {}, 2)


class TestLocalRunner:
    def test_matches_pool_reduce_semantics(self):
        local = LocalRunner(2, init_probe_worker, {}, param_size=3)
        local.run("fill", [{"value": 2.0}, {"value": 4.0}])
        np.testing.assert_allclose(local.reduce(total_weight=3.0), np.full(3, 2.0))
        local.close()

    def test_failure_wraps_in_parallel_worker_error(self):
        local = LocalRunner(1, init_probe_worker, {}, param_size=1)
        with pytest.raises(ParallelWorkerError) as excinfo:
            local.run("fail", [{"indices": [5]}])
        assert excinfo.value.worker_id == 0
        assert excinfo.value.shard == [5]


def test_spawn_pool_matches_local_block_training(
    monkeypatch, tiny_docs, tokenizer, config
):
    """End-to-end: real 2-process training is bit-identical to LocalRunner."""
    from repro.core import Featurizer, HierarchicalEncoder
    from repro.core.block_classifier import (
        BlockClassifier,
        BlockTrainer,
        LabeledDocument,
    )
    from repro.parallel import param_vector

    def train(backend):
        monkeypatch.setenv(BACKEND_ENV, backend)
        encoder = HierarchicalEncoder(config, rng=np.random.default_rng(5))
        model = BlockClassifier(
            encoder, Featurizer(tokenizer, config), rng=np.random.default_rng(9)
        )
        BlockTrainer(model, seed=11).fit(
            [LabeledDocument.from_gold(d) for d in tiny_docs[:4]],
            epochs=1,
            batch_size=4,
            num_workers=2,
        )
        return param_vector(model.parameters())

    local_params = train("local")
    process_params = train("process")
    assert np.array_equal(local_params, process_params)
