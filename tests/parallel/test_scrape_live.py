"""Scraping /metrics during and after a live 2-worker pool run.

The acceptance shape for the observability plane: a telemetry server
attached to the *parent* session stays scrapeable while a spawn pool
executes, every concurrent scrape passes the exposition format checker,
and after ``close()`` relays the workers' spools the scrape carries the
``worker=``-labeled series merged from the child processes.
"""

import threading
import urllib.request

import pytest

from repro import obs
from repro.obs.metrics import validate_exposition
from repro.parallel import WorkerPool, init_probe_worker


def _scrape(url):
    with urllib.request.urlopen(url + "/metrics", timeout=10.0) as response:
        return response.read().decode("utf-8")


@pytest.fixture()
def scraped_pool_run():
    """2-worker run with a live server; yields (session, mid, final)."""
    mid_scrapes = []
    with obs.telemetry(serve_port=0) as session:
        url = session.server.url
        stop = threading.Event()

        def scraper():
            while not stop.is_set():
                mid_scrapes.append(_scrape(url))

        thread = threading.Thread(target=scraper, daemon=True)
        pool = WorkerPool(2, init_probe_worker, {}, param_size=4)
        thread.start()
        try:
            session.metrics.counter("driver.dispatches").inc(task="traced")
            pool.run("traced", [{"repeats": 50_000}] * 2)
        finally:
            stop.set()
            thread.join(timeout=10.0)
            pool.close()  # relays worker spools into the parent
        final = _scrape(url)
    return session, mid_scrapes, final


class TestLivePoolScrape:
    def test_mid_run_scrapes_are_valid_expositions(self, scraped_pool_run):
        _, mid_scrapes, _ = scraped_pool_run
        assert mid_scrapes, "scraper thread never completed a scrape"
        for body in mid_scrapes:
            assert validate_exposition(body) == []

    def test_final_scrape_carries_worker_labeled_series(
        self, scraped_pool_run
    ):
        _, _, final = scraped_pool_run
        assert validate_exposition(final) == []
        for worker in ("0", "1"):
            assert (
                f'parallel_worker_step_seconds_count{{worker="{worker}"}} 1'
                in final
            )
            assert f'probe_tasks_total{{worker="{worker}"}} 1.0' in final

    def test_mid_run_scrapes_see_parent_series(self, scraped_pool_run):
        _, mid_scrapes, _ = scraped_pool_run
        assert 'driver_dispatches_total{task="traced"} 1.0' in mid_scrapes[-1]

    def test_pool_span_lands_in_parent_tracer(self, scraped_pool_run):
        session, _, _ = scraped_pool_run
        assert "parallel.pool_start" in session.tracer.calls_by_name()
        # per-worker step timings merged from the children's clocks
        timer = session.metrics.timer("parallel.worker_step_seconds")
        for worker in ("0", "1"):
            assert timer.value(worker=worker)["count"] == 1
