"""Parallel corpus generation/featurization: worker-count invariance."""

import numpy as np
import pytest

from repro.corpus import ContentConfig, ResumeGenerator
from repro.parallel import featurize_documents, generate_documents


def _doc_fingerprint(document):
    return (
        document.doc_id,
        document.num_sentences,
        [s.text for s in document.sentences],
    )


class TestGenerateAt:
    def test_deterministic_in_seed_and_index(self):
        generator = ResumeGenerator(seed=3, content_config=ContentConfig.tiny())
        a = generator.generate_at(5)
        b = generator.generate_at(5)
        assert _doc_fingerprint(a) == _doc_fingerprint(b)

    def test_indices_draw_distinct_documents(self):
        generator = ResumeGenerator(seed=3, content_config=ContentConfig.tiny())
        a, b = generator.generate_at(0), generator.generate_at(1)
        assert a.doc_id != b.doc_id
        assert _doc_fingerprint(a) != _doc_fingerprint(b)

    def test_doc_id_uses_prefix_and_index(self):
        generator = ResumeGenerator(seed=3, content_config=ContentConfig.tiny())
        assert generator.generate_at(7, prefix="cv").doc_id == "cv-00007"


class TestGenerateDocuments:
    @pytest.mark.parametrize("num_workers", [2, 3])
    def test_worker_count_invariant(self, local_backend, num_workers):
        generator = ResumeGenerator(seed=11, content_config=ContentConfig.tiny())
        docs_one = generate_documents(generator, 7, num_workers=1)
        docs_n = generate_documents(generator, 7, num_workers=num_workers)
        assert [_doc_fingerprint(d) for d in docs_one] == [
            _doc_fingerprint(d) for d in docs_n
        ]

    def test_batch_num_workers_entry_point(self, local_backend):
        generator = ResumeGenerator(seed=11, content_config=ContentConfig.tiny())
        parallel = generator.batch(5, num_workers=2)
        direct = generate_documents(generator, 5, num_workers=1)
        assert [_doc_fingerprint(d) for d in parallel] == [
            _doc_fingerprint(d) for d in direct
        ]

    def test_spawned_processes_match_local(self):
        generator = ResumeGenerator(seed=11, content_config=ContentConfig.tiny())
        local = generate_documents(generator, 5, num_workers=1)
        spawned = generate_documents(generator, 5, num_workers=2)
        assert [_doc_fingerprint(d) for d in local] == [
            _doc_fingerprint(d) for d in spawned
        ]


class TestFeaturizeDocuments:
    @pytest.mark.parametrize("num_workers", [2, 3])
    def test_matches_sequential_featurizer(
        self, local_backend, tiny_docs, tokenizer, config, num_workers
    ):
        from repro.core import Featurizer

        sequential = Featurizer(tokenizer, config).featurize_many(tiny_docs)
        parallel = featurize_documents(
            tiny_docs, tokenizer, config, num_workers=num_workers
        )
        assert len(parallel) == len(sequential)
        for seq, par in zip(sequential, parallel):
            np.testing.assert_array_equal(seq.token_ids, par.token_ids)
            np.testing.assert_array_equal(seq.token_mask, par.token_mask)
            np.testing.assert_allclose(seq.sentence_visual, par.sentence_visual)
