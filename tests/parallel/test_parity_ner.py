"""1-vs-N parity for NER self-training (Algorithm 2 end to end).

Covers both stages: supervised teacher training (CRF loss, token-count
weights) and the KL self-distillation loop (confidence-masked soft
labels, Eq. 9 class frequency reduced worker-count invariantly).
"""

import numpy as np
import pytest

from repro.corpus import build_ner_corpus
from repro.ner import (
    DistantAnnotator,
    NerConfig,
    NerTagger,
    SelfTrainConfig,
    SelfTrainer,
    annotate_examples,
    build_dictionaries,
)
from repro.parallel import param_vector
from repro.text import WordPieceTokenizer

PARITY_ATOL = 1e-9


@pytest.fixture(scope="module")
def setting():
    corpus = build_ner_corpus(
        num_train_docs=8, num_validation_docs=2, num_test_docs=2, seed=21
    )
    train = annotate_examples(
        corpus.train, DistantAnnotator(build_dictionaries(coverage=0.6, seed=2, noise=0.3))
    )
    tokenizer = WordPieceTokenizer.train(
        [e.text for e in train], vocab_size=400, min_frequency=1
    )
    config = NerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        layers=1,
        heads=2,
        lstm_hidden=16,
        dropout=0.0,
    )
    return corpus, train, tokenizer, config


def _run(setting, num_workers):
    corpus, train, tokenizer, config = setting
    model = NerTagger(config, tokenizer, rng=np.random.default_rng(3))
    trainer = SelfTrainer(
        model,
        SelfTrainConfig(
            teacher_epochs=2,
            teacher_patience=4,
            iterations=2,
            batch_size=4,
            learning_rate=3e-3,
            num_workers=num_workers,
        ),
        seed=0,
    )
    final = trainer.train(train, corpus.validation)
    return param_vector(final.parameters()), trainer.history


@pytest.mark.parametrize("num_workers", [2, 3])
def test_self_training_parity(local_backend, setting, num_workers):
    params_one, hist_one = _run(setting, 1)
    params_n, hist_n = _run(setting, num_workers)
    assert np.abs(params_one - params_n).max() <= PARITY_ATOL
    assert len(hist_one) == len(hist_n)
    for record_one, record_n in zip(hist_one, hist_n):
        assert record_one["loss"] == pytest.approx(record_n["loss"], abs=PARITY_ATOL)
