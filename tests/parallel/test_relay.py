"""Cross-process telemetry fan-in: a real spawn pool, one merged run log.

The contract under test: a :class:`WorkerPool` built inside an active
telemetry session relays every worker's spans, ``worker_step`` timings
and final metric snapshot into the *parent* session on ``close()`` —
span ids process-qualified (``w0:<id>``), worker root spans parented
under the pool's ``parallel.pool_start`` span, timestamps stamped by the
worker's own clock, and ``parallel.worker_step_seconds`` labeled
``worker=<id>`` with no parent-side double counting.
"""

import pytest

from repro import obs
from repro.parallel import WorkerPool, init_probe_worker


@pytest.fixture()
def relayed_run(tmp_path):
    """One profiled 2-worker pool run; yields (session, events)."""
    path = str(tmp_path / "run.jsonl")
    with obs.telemetry(run_log=path, profile_hz=200) as session:
        pool = WorkerPool(2, init_probe_worker, {}, param_size=4)
        try:
            pool.run("traced", [{"repeats": 50_000}] * 2)
            pool.run("traced", [{"repeats": 50_000}] * 2)
        finally:
            pool.close()
    return session, obs.read_run_log(path)


class TestRelayRoundTrip:
    def test_worker_spans_arrive_qualified(self, relayed_run):
        _, events = relayed_run
        worker_spans = [
            e for e in events if e["event"] == "span" and "worker" in e
        ]
        assert worker_spans, "no worker spans were relayed"
        prefixes = {str(e["span_id"]).split(":")[0] for e in worker_spans}
        assert prefixes == {"w0", "w1"}
        for span in worker_spans:
            assert span["worker"] in (0, 1)

    def test_root_spans_parented_under_pool_span(self, relayed_run):
        _, events = relayed_run
        pool_spans = [
            e for e in events
            if e["event"] == "span" and e["name"] == "parallel.pool_start"
        ]
        assert len(pool_spans) == 1
        pool_span_id = pool_spans[0]["span_id"]
        worker_spans = [
            e for e in events if e["event"] == "span" and "worker" in e
        ]
        roots = [s for s in worker_spans if s["parent_id"] == pool_span_id]
        nested = [
            s for s in worker_spans
            if isinstance(s["parent_id"], str)
            and s["parent_id"].startswith("w")
        ]
        assert roots, "no worker root spans hang off parallel.pool_start"
        assert nested, "no nested worker spans kept their local parent"
        # every nested parent resolves within the same worker's id space
        for span in nested:
            assert span["parent_id"].split(":")[0] == (
                str(span["span_id"]).split(":")[0]
            )

    def test_worker_step_series_come_from_worker_clocks(self, relayed_run):
        session, events = relayed_run
        steps = [e for e in events if e["event"] == "worker_step"]
        assert len(steps) == 4  # 2 dispatches x 2 workers
        assert {e["worker"] for e in steps} == {0, 1}
        for step in steps:
            assert step["task"] == "traced"
            assert step["seconds"] > 0
        run_start = next(e for e in events if e["event"] == "run_start")
        merges = [e for e in events if e["event"] == "relay_merge"]
        assert {e["worker"] for e in merges} == {0, 1}
        # worker events keep their original wall-clock stamps: they fall
        # between the parent run opening and the merge event that
        # forwarded them, not at the merge instant itself
        for step in steps:
            assert run_start["ts"] <= step["ts"] <= max(
                m["ts"] for m in merges
            )

    def test_step_timer_labeled_per_worker_without_double_count(
        self, relayed_run
    ):
        session, _ = relayed_run
        timer = session.metrics.timer("parallel.worker_step_seconds")
        for worker in ("0", "1"):
            assert timer.value(worker=worker)["count"] == 2
        # no unlabeled parent-side series: the relay replaces the parent's
        # post-hoc bookkeeping instead of adding to it
        assert timer.value()["count"] == 0

    def test_worker_counters_merge_with_worker_labels(self, relayed_run):
        session, _ = relayed_run
        counter = session.metrics.counter("probe.tasks")
        assert counter.value(worker="0") == 2
        assert counter.value(worker="1") == 2

    def test_profile_events_span_processes(self, relayed_run):
        from repro.obs.report import aggregate_profile

        _, events = relayed_run
        profile = aggregate_profile(events)
        assert profile is not None
        assert "parent" in profile["processes"]
        # worker profiles are best-effort (tiny tasks may yield zero
        # samples) but the parent must always report
        assert profile["samples"] > 0

    def test_merged_log_renders(self, relayed_run):
        from repro.obs.report import summarize

        _, events = relayed_run
        text = summarize(events, profile=True)
        assert "parallel.worker_task" in text
        assert "profile:" in text


class TestRelayLifecycle:
    def test_pool_without_session_has_no_relay(self):
        assert obs.get_telemetry() is None
        pool = WorkerPool(2, init_probe_worker, {}, param_size=4)
        try:
            assert pool._relay is None
            results = pool.run("echo", [{"tag": "a"}, {"tag": "b"}])
            assert [r["worker"] for r in results] == [0, 1]
        finally:
            pool.close()

    def test_parent_side_timer_still_works_without_relay(self):
        with obs.telemetry() as session:
            pool = WorkerPool(2, init_probe_worker, {}, param_size=4)
            try:
                assert pool._relay is not None
            finally:
                pool.close()
        # with a relay the observations carry worker labels only
        timer = session.metrics.timer("parallel.worker_step_seconds")
        assert timer.value()["count"] == 0

    def test_merge_is_idempotent(self, relayed_run):
        session, _ = relayed_run
        # close() already merged; a second close/merge must not re-fold
        counter = session.metrics.counter("probe.tasks")
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == 4

    def test_spool_directory_removed_after_merge(self, relayed_run):
        import os

        session, events = relayed_run
        assert any(e["event"] == "relay_merge" for e in events)
        # the PoolRelay cleans its mkdtemp spool on merge; nothing of the
        # per-worker JSONL files survives
        for event in events:
            spool = event.get("spool_dir")
            if spool:
                assert not os.path.exists(spool)
