"""Closed-form InfoNCE gradients match the autograd reference exactly.

The cross-worker SCL protocol depends on ``info_nce_grads`` being the
true derivative of ``Pretrainer.info_nce`` — any drift there silently
breaks 1-vs-N parity, so this pins the two implementations together.
"""

import numpy as np
import pytest

from repro.core.pretrain import Pretrainer
from repro.nn.tensor import Tensor
from repro.parallel import info_nce_grads


def _reference(predicted, targets, temperature):
    p = Tensor(predicted.copy(), requires_grad=True)
    t = Tensor(targets.copy(), requires_grad=True)
    loss = Pretrainer.info_nce(p, t, temperature)
    loss.backward()
    return float(loss.data), p.grad, t.grad


@pytest.mark.parametrize("n,dim", [(1, 4), (3, 8), (12, 16)])
@pytest.mark.parametrize("temperature", [0.1, 1.0])
def test_info_nce_grads_match_autograd(n, dim, temperature):
    rng = np.random.default_rng(42 + n)
    predicted = rng.normal(size=(n, dim))
    targets = rng.normal(size=(n, dim))
    loss, g_pred, g_tgt = info_nce_grads(predicted, targets, temperature)
    ref_loss, ref_g_pred, ref_g_tgt = _reference(predicted, targets, temperature)
    assert loss == pytest.approx(ref_loss, abs=1e-12)
    np.testing.assert_allclose(g_pred, ref_g_pred, atol=1e-12)
    np.testing.assert_allclose(g_tgt, ref_g_tgt, atol=1e-12)


def test_info_nce_grads_large_scores_stay_finite():
    rng = np.random.default_rng(0)
    predicted = rng.normal(size=(4, 6)) * 50.0
    targets = rng.normal(size=(4, 6)) * 50.0
    loss, g_pred, g_tgt = info_nce_grads(predicted, targets, 0.05)
    assert np.isfinite(loss)
    assert np.isfinite(g_pred).all()
    assert np.isfinite(g_tgt).all()


def test_info_nce_grads_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        info_nce_grads(np.zeros((2, 3)), np.zeros((3, 3)), 1.0)
