"""1-vs-N parity for pre-training (all three objectives, both maskings).

SCL pools masked slots across the whole effective batch, so this also
exercises the two-phase forward/backward protocol and the parent-side
InfoNCE gather — the most parity-fragile path in ``repro.parallel``.
"""

import numpy as np
import pytest

from repro.core import Featurizer, HierarchicalEncoder
from repro.core.pretrain import Pretrainer
from repro.parallel import param_vector

PARITY_ATOL = 1e-9


def _pretrain(tiny_docs, tokenizer, config, num_workers, dynamic):
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(5))
    trainer = Pretrainer(
        encoder,
        Featurizer(tokenizer, config),
        seed=13,
        dynamic_sentence_masking=dynamic,
    )
    history = trainer.fit(tiny_docs, epochs=2, batch_size=3, num_workers=num_workers)
    return param_vector(encoder.parameters()), history


@pytest.mark.parametrize("num_workers", [2, 3])
def test_pretrain_parity_dynamic_masking(
    local_backend, tiny_docs, tokenizer, config, num_workers
):
    params_one, hist_one = _pretrain(tiny_docs, tokenizer, config, 1, True)
    params_n, hist_n = _pretrain(tiny_docs, tokenizer, config, num_workers, True)
    assert np.abs(params_one - params_n).max() <= PARITY_ATOL
    assert len(hist_one) == len(hist_n)
    for record_one, record_n in zip(hist_one, hist_n):
        assert record_one.keys() == record_n.keys()
        for key, value in record_one.items():
            if value is None:
                assert record_n[key] is None
            else:
                assert record_n[key] == pytest.approx(value, abs=PARITY_ATOL)


def test_pretrain_parity_static_masking(local_backend, tiny_docs, tokenizer, config):
    params_one, _ = _pretrain(tiny_docs, tokenizer, config, 1, False)
    params_two, _ = _pretrain(tiny_docs, tokenizer, config, 2, False)
    assert np.abs(params_one - params_two).max() <= PARITY_ATOL


def test_pretrain_rejects_grad_accumulation_with_workers(
    tiny_docs, tokenizer, config
):
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(5))
    trainer = Pretrainer(encoder, Featurizer(tokenizer, config), seed=13)
    with pytest.raises(ValueError, match="grad_accumulation"):
        trainer.fit(tiny_docs, epochs=1, grad_accumulation=2, num_workers=2)
