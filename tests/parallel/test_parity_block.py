"""1-vs-N parity for the block classifier: same seed, same parameters.

The acceptance contract: with ``dropout=0.0`` and the same effective
batch, training with N workers must land within 1e-9 of training with 1
worker, final parameters compared element-wise.  These run on the
in-process ``LocalRunner`` (fast, same reduce arithmetic as the spawn
pool; ``test_pool.py`` covers real processes).
"""

import numpy as np
import pytest

from repro.core import Featurizer, HierarchicalEncoder
from repro.core.block_classifier import BlockClassifier, BlockTrainer, LabeledDocument
from repro.parallel import param_vector

PARITY_ATOL = 1e-9


def _train(tiny_docs, tokenizer, config, num_workers):
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(5))
    model = BlockClassifier(encoder, Featurizer(tokenizer, config), rng=np.random.default_rng(9))
    trainer = BlockTrainer(model, seed=11)
    labeled = [LabeledDocument.from_gold(d) for d in tiny_docs]
    history = trainer.fit(labeled, epochs=2, batch_size=4, num_workers=num_workers)
    return param_vector(model.parameters()), history


@pytest.mark.parametrize("num_workers", [2, 3])
def test_block_training_parity(local_backend, tiny_docs, tokenizer, config, num_workers):
    params_one, history_one = _train(tiny_docs, tokenizer, config, 1)
    params_n, history_n = _train(tiny_docs, tokenizer, config, num_workers)
    assert np.abs(params_one - params_n).max() <= PARITY_ATOL
    np.testing.assert_allclose(history_one["loss"], history_n["loss"], atol=PARITY_ATOL)


def test_block_rejects_grad_accumulation_with_workers(tiny_docs, tokenizer, config):
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(5))
    model = BlockClassifier(encoder, Featurizer(tokenizer, config), rng=np.random.default_rng(9))
    trainer = BlockTrainer(model, seed=11)
    labeled = [LabeledDocument.from_gold(d) for d in tiny_docs]
    with pytest.raises(ValueError, match="grad_accumulation"):
        trainer.fit(labeled, epochs=1, grad_accumulation=2, num_workers=2)
