"""FeatureCache multi-process discipline: per-process entries, fork guard.

The cache keys on ``id(document)``, which is only meaningful inside one
process.  ``repro.parallel`` therefore never ships a cache across the
boundary (workers build their own), and a module-level ``os.register_at_fork``
guard clears any live cache in a forked child so stale identity keys can
never alias a new object at a recycled address.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.core.featurize import _clear_caches_after_fork, FeatureCache, Featurizer


class TestPerProcessSemantics:
    def test_identity_keyed_lookup(self, tiny_docs, tokenizer, config):
        featurizer = Featurizer(tokenizer, config)
        doc = tiny_docs[0]
        first = featurizer.featurize(doc)
        assert featurizer.featurize(doc) is first
        assert featurizer.cache.info()["hits"] == 1

    def test_clear_preserve_stats(self, tiny_docs, tokenizer, config):
        featurizer = Featurizer(tokenizer, config)
        featurizer.featurize_many(tiny_docs[:3], repeats=2)
        info = featurizer.cache.info()
        assert info["hits"] == 3 and info["size"] == 3
        featurizer.cache.clear(preserve_stats=True)
        assert len(featurizer.cache) == 0
        assert featurizer.cache.info()["hits"] == 3
        featurizer.cache.clear()
        assert featurizer.cache.info()["hits"] == 0

    def test_featurize_many_rejects_nonpositive_repeats(
        self, tiny_docs, tokenizer, config
    ):
        featurizer = Featurizer(tokenizer, config)
        with pytest.raises(ValueError):
            featurizer.featurize_many(tiny_docs[:1], repeats=0)

    def test_featurize_many_returns_in_order(self, tiny_docs, tokenizer, config):
        featurizer = Featurizer(tokenizer, config)
        features = featurizer.featurize_many(tiny_docs)
        singles = [featurizer.featurize(d) for d in tiny_docs]
        assert all(a is b for a, b in zip(features, singles))


class TestForkGuard:
    def test_fork_hook_clears_live_caches(self, tiny_docs, tokenizer, config):
        featurizer = Featurizer(tokenizer, config)
        featurizer.featurize_many(tiny_docs[:2], repeats=2)
        assert len(featurizer.cache) == 2
        # Simulate what the registered after_in_child hook runs.
        _clear_caches_after_fork()
        assert len(featurizer.cache) == 0
        # Stats survive (lifetime counters keep meaning across the fork).
        assert featurizer.cache.info()["hits"] == 2

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="fork unavailable")
    def test_forked_child_starts_with_empty_cache(self, tiny_docs, tokenizer, config):
        featurizer = Featurizer(tokenizer, config)
        featurizer.featurize_many(tiny_docs[:2])
        assert len(featurizer.cache) == 2
        pid = os.fork()
        if pid == 0:
            # Child: the registered hook must already have fired.
            os._exit(0 if len(featurizer.cache) == 0 else 17)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        # Parent's cache is untouched.
        assert len(featurizer.cache) == 2


class TestThreadSafety:
    """Concurrent lookup/store against one cache (the serving-tier shape):
    counters must reconcile exactly and the LRU bound must hold —
    regression for the previously lock-free mutation paths."""

    class _Doc:
        __slots__ = ("__weakref__",)

    def test_concurrent_mixed_workload_is_consistent(self):
        import threading

        cache = FeatureCache(maxsize=32)
        documents = [self._Doc() for _ in range(64)]
        lookups_per_thread = 400
        num_threads = 4
        errors = []

        def drive(seed):
            try:
                for step in range(lookups_per_thread):
                    doc = documents[(seed * 31 + step) % len(documents)]
                    if cache.lookup(doc) is None:
                        cache.store(doc, object())
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(seed,))
            for seed in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        info = cache.info()
        # Every lookup is classified exactly once; torn counter updates
        # under the old lock-free paths would break this ledger.
        assert info["hits"] + info["misses"] == num_threads * lookups_per_thread
        assert len(cache) <= cache.maxsize

    def test_fork_guard_replaces_lock(self):
        # The after-fork hook rebinds a fresh lock before clearing:
        # a fork taken while another thread held the lock must not leave
        # the child's cache permanently wedged.
        cache = FeatureCache(maxsize=4)
        stale_lock = cache._lock
        stale_lock.acquire()  # simulate a holder that died with the fork
        try:
            _clear_caches_after_fork()
            assert cache._lock is not stale_lock
            doc = self._Doc()
            cache.store(doc, object())  # must not deadlock
            assert cache.lookup(doc) is not None
        finally:
            stale_lock.release()


class TestHitRateGauges:
    def test_lookup_updates_session_gauge(self, tiny_docs, tokenizer, config):
        with obs.telemetry() as tel:
            featurizer = Featurizer(tokenizer, config)
            featurizer.featurize_many(tiny_docs[:2], repeats=2)
            gauge = tel.metrics.gauge("feature_cache.hit_rate")
            assert gauge.value() == pytest.approx(featurizer.cache.hit_rate)
            assert featurizer.cache.hit_rate == pytest.approx(0.5)

    def test_parallel_featurize_publishes_per_worker_gauges(
        self, local_backend, tiny_docs, tokenizer, config
    ):
        from repro.parallel import featurize_documents

        with obs.telemetry() as tel:
            features = featurize_documents(
                tiny_docs, tokenizer, config, num_workers=2, repeats=2
            )
            gauge = tel.metrics.gauge("parallel.feature_cache.hit_rate")
            # Two repeats through fresh worker-local caches -> 50% hit rate.
            assert gauge.value(worker="0") == pytest.approx(0.5)
            assert gauge.value(worker="1") == pytest.approx(0.5)
        assert len(features) == len(tiny_docs)

    def test_cache_disabled_when_size_zero(self, tokenizer, config):
        assert Featurizer(tokenizer, config, cache_size=0).cache is None
        with pytest.raises(ValueError):
            FeatureCache(0)
