"""Tests for embeddings and the hierarchical encoder stack."""

import numpy as np
import pytest

from repro.core import (
    DocumentEncoder,
    HierarchicalEncoder,
    LayoutEmbedding,
    ResuFormerConfig,
    SentenceEncoder,
    TextEmbedding,
)
from repro.nn import Tensor


class TestTextEmbedding:
    def test_shape_and_norm(self):
        emb = TextEmbedding(50, 16, max_positions=10, rng=np.random.default_rng(0))
        out = emb(np.zeros((3, 8), dtype=int), np.zeros((3, 8), dtype=int))
        assert out.shape == (3, 8, 16)

    def test_position_changes_output(self):
        emb = TextEmbedding(50, 16, max_positions=10, rng=np.random.default_rng(0))
        ids = np.array([[5, 5]])
        out = emb(ids, np.zeros_like(ids)).numpy()
        assert not np.allclose(out[0, 0], out[0, 1])  # same word, diff position

    def test_overlong_sequence_rejected(self):
        emb = TextEmbedding(50, 16, max_positions=4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            emb(np.zeros((1, 5), dtype=int), np.zeros((1, 5), dtype=int))


class TestLayoutEmbedding:
    def test_shape(self):
        emb = LayoutEmbedding(16, buckets=64, rng=np.random.default_rng(1))
        layout = np.zeros((3, 5, 7), dtype=int)
        assert emb(layout).shape == (3, 5, 16)

    def test_x_position_sensitivity(self):
        emb = LayoutEmbedding(16, buckets=64, rng=np.random.default_rng(1))
        a = np.array([[1, 2, 3, 4, 2, 2, 0]])
        b = a.copy()
        b[0, 0] = 30  # move x_min
        assert not np.allclose(emb(a).numpy(), emb(b).numpy())

    def test_page_sensitivity(self):
        emb = LayoutEmbedding(16, buckets=64, rng=np.random.default_rng(1))
        a = np.array([[1, 2, 3, 4, 2, 2, 1]])
        b = a.copy()
        b[0, 6] = 2
        assert not np.allclose(emb(a).numpy(), emb(b).numpy())


class TestSentenceEncoder:
    def test_outputs(self, config, featurizer, tiny_docs):
        enc = SentenceEncoder(config, rng=np.random.default_rng(2))
        f = featurizer.featurize(tiny_docs[0])
        states, vectors = enc(
            f.token_ids, f.token_mask, f.token_layout, f.token_segments
        )
        m, t = f.token_ids.shape
        assert states.shape == (m, t, config.hidden_dim)
        assert vectors.shape == (m, config.hidden_dim)

    def test_sentence_vectors_unit_norm(self, config, featurizer, tiny_docs):
        enc = SentenceEncoder(config, rng=np.random.default_rng(2))
        f = featurizer.featurize(tiny_docs[0])
        _, vectors = enc(
            f.token_ids, f.token_mask, f.token_layout, f.token_segments
        )
        norms = np.linalg.norm(vectors.numpy(), axis=-1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-8)

    def test_layout_affects_encoding(self, config, featurizer, tiny_docs):
        enc = SentenceEncoder(config, rng=np.random.default_rng(2))
        enc.eval()
        f = featurizer.featurize(tiny_docs[0])
        _, base = enc(f.token_ids, f.token_mask, f.token_layout, f.token_segments)
        shifted = f.token_layout.copy()
        shifted[..., 0] = (shifted[..., 0] + 20) % config.layout_buckets
        _, moved = enc(f.token_ids, f.token_mask, shifted, f.token_segments)
        assert not np.allclose(base.numpy(), moved.numpy())


class TestDocumentEncoder:
    def test_forward_shapes(self, config, featurizer, tiny_docs):
        sent = SentenceEncoder(config, rng=np.random.default_rng(4))
        doc_enc = DocumentEncoder(config, rng=np.random.default_rng(5))
        f = featurizer.featurize(tiny_docs[0])
        _, vectors = sent(f.token_ids, f.token_mask, f.token_layout, f.token_segments)
        contextual, fused = doc_enc(
            vectors,
            f.sentence_visual,
            f.sentence_layout,
            f.sentence_positions,
            f.sentence_segments,
        )
        m = f.num_sentences
        assert contextual.shape == (m, config.document_dim)
        assert fused.shape == (m, config.document_dim)

    def test_mask_slots_replace_input(self, config, featurizer, tiny_docs):
        doc_enc = DocumentEncoder(config, rng=np.random.default_rng(5))
        doc_enc.eval()
        f = featurizer.featurize(tiny_docs[0])
        m = f.num_sentences
        vectors = Tensor(np.random.default_rng(0).normal(size=(m, config.hidden_dim)))
        slots = np.zeros(m, dtype=bool)
        slots[1] = True
        _, fused = doc_enc(
            vectors,
            f.sentence_visual,
            f.sentence_layout,
            f.sentence_positions,
            f.sentence_segments,
            mask_slots=slots,
        )
        # Fused targets stay unmasked — they are the contrastive ground truth.
        assert not np.allclose(
            fused.numpy()[1, : config.hidden_dim], 0.0
        )

    def test_sentence_cap_enforced(self, config):
        doc_enc = DocumentEncoder(config, rng=np.random.default_rng(5))
        m = config.max_document_sentences + 1
        vectors = Tensor(np.zeros((m, config.hidden_dim)))
        with pytest.raises(ValueError):
            doc_enc(
                vectors,
                np.zeros((m, config.visual_dim)),
                np.zeros((m, 7), dtype=int),
                np.arange(m) % config.max_document_sentences,
                np.zeros(m, dtype=int),
            )

    def test_visual_channel_matters(self, config, featurizer, tiny_docs):
        doc_enc = DocumentEncoder(config, rng=np.random.default_rng(5))
        doc_enc.eval()
        f = featurizer.featurize(tiny_docs[0])
        m = f.num_sentences
        vectors = Tensor(np.zeros((m, config.hidden_dim)))
        base, _ = doc_enc(
            vectors, f.sentence_visual, f.sentence_layout,
            f.sentence_positions, f.sentence_segments,
        )
        other, _ = doc_enc(
            vectors, np.zeros_like(f.sentence_visual), f.sentence_layout,
            f.sentence_positions, f.sentence_segments,
        )
        assert not np.allclose(base.numpy(), other.numpy())


class TestHierarchicalEncoder:
    def test_end_to_end(self, encoder, featurizer, tiny_docs, config):
        f = featurizer.featurize(tiny_docs[0])
        out = encoder(f)
        m = f.num_sentences
        assert out.token_states.shape == (m, f.max_tokens, config.hidden_dim)
        assert out.sentence_vectors.shape == (m, config.hidden_dim)
        assert out.fused.shape == (m, config.document_dim)
        assert out.contextual.shape == (m, config.document_dim)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResuFormerConfig(hidden_dim=30, sentence_heads=4).validate()
        with pytest.raises(ValueError):
            ResuFormerConfig(temperature=0.0).validate()

    def test_summary_mentions_structure(self, encoder):
        text = encoder.summary()
        assert "sentence encoder" in text
        assert "document encoder" in text
        assert "parameters" in text

    def test_gradients_reach_every_parameter(self, encoder, featurizer, tiny_docs):
        f = featurizer.featurize(tiny_docs[0])
        out = encoder(f)
        (out.contextual.sum() + out.token_states.sum()).backward()
        missing = [
            name
            for name, p in encoder.named_parameters()
            if p.grad is None and "mask_vector" not in name
        ]
        assert not missing, missing
