"""Tests for the block classifier, trainer, and knowledge distillation."""

import numpy as np
import pytest

from repro.core import (
    BlockClassifier,
    BlockTrainer,
    LabeledDocument,
    pseudo_label,
    run_distillation,
)
from repro.docmodel import BLOCK_SCHEME


@pytest.fixture()
def classifier(encoder, featurizer):
    return BlockClassifier(
        encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(9)
    )


class TestBlockClassifier:
    def test_emissions_shape(self, classifier, featurizer, tiny_docs):
        f = featurizer.featurize(tiny_docs[0])
        emissions = classifier.emissions(f)
        assert emissions.shape == (1, f.num_sentences, BLOCK_SCHEME.num_labels)

    def test_loss_positive(self, classifier, featurizer, tiny_docs):
        doc = tiny_docs[0]
        f = featurizer.featurize(doc)
        labels = doc.block_iob_labels(BLOCK_SCHEME)
        loss = classifier.loss(f, labels)
        assert float(loss.data) > 0

    def test_predict_returns_label_per_sentence(self, classifier, tiny_docs):
        doc = tiny_docs[0]
        labels = classifier.predict(doc)
        assert len(labels) == doc.num_sentences
        assert all(l in BLOCK_SCHEME.labels for l in labels)

    def test_predict_block_tags_strips_prefixes(self, classifier, tiny_docs):
        tags = classifier.predict_block_tags(tiny_docs[0])
        assert all("-" not in t for t in tags)

    def test_predict_token_tags_aligns(self, classifier, tiny_docs):
        doc = tiny_docs[0]
        token_tags = classifier.predict_token_tags(doc)
        assert len(token_tags) == doc.num_tokens


class TestBlockTrainer:
    def test_training_improves_accuracy(self, classifier, tiny_docs):
        train = [LabeledDocument.from_gold(d) for d in tiny_docs[:4]]
        val = [LabeledDocument.from_gold(d) for d in tiny_docs[4:5]]
        trainer = BlockTrainer(classifier, encoder_lr=1e-3, head_lr=1e-2, seed=0)
        before = trainer.sentence_accuracy(val)
        history = trainer.fit(train, validation=val, epochs=4, patience=4)
        after = trainer.sentence_accuracy(val)
        assert after >= before
        assert history["loss"][-1] < history["loss"][0]

    def test_early_stopping_restores_best(self, classifier, tiny_docs):
        train = [LabeledDocument.from_gold(d) for d in tiny_docs[:2]]
        val = [LabeledDocument.from_gold(d) for d in tiny_docs[2:3]]
        trainer = BlockTrainer(classifier, encoder_lr=1e-3, head_lr=1e-2, seed=0)
        history = trainer.fit(train, validation=val, epochs=3, patience=1)
        best = max(history["val_accuracy"])
        final = trainer.sentence_accuracy(val)
        assert final == pytest.approx(best, abs=1e-9)

    def test_labeled_document_from_gold(self, tiny_docs):
        item = LabeledDocument.from_gold(tiny_docs[0])
        assert len(item.labels) == tiny_docs[0].num_sentences


class _OracleTeacher:
    """A perfect teacher: returns gold labels (upper-bounds KD quality)."""

    def predict(self, document):
        return BLOCK_SCHEME.decode(document.block_iob_labels(BLOCK_SCHEME))


class _NoisyTeacher:
    def predict(self, document):
        labels = BLOCK_SCHEME.decode(document.block_iob_labels(BLOCK_SCHEME))
        return ["O" if i % 4 == 0 else l for i, l in enumerate(labels)]


class TestDistillation:
    def test_pseudo_label_shapes(self, tiny_docs):
        pseudo = pseudo_label(_OracleTeacher(), tiny_docs[:2])
        assert len(pseudo) == 2
        for item, doc in zip(pseudo, tiny_docs[:2]):
            assert len(item.labels) == doc.num_sentences

    def test_pseudo_label_handles_unknown_labels(self, tiny_docs):
        class WeirdTeacher:
            def predict(self, document):
                return ["B-Nonsense"] * document.num_sentences

        pseudo = pseudo_label(WeirdTeacher(), tiny_docs[:1])
        assert all(l == BLOCK_SCHEME.outside_id for l in pseudo[0].labels)

    def test_run_distillation_two_stages(self, classifier, tiny_docs):
        labeled = [LabeledDocument.from_gold(d) for d in tiny_docs[:2]]
        pseudo = pseudo_label(_NoisyTeacher(), tiny_docs[2:4])
        val = [LabeledDocument.from_gold(d) for d in tiny_docs[4:5]]
        trainer = BlockTrainer(classifier, encoder_lr=1e-3, head_lr=1e-2, seed=0)
        history = run_distillation(
            trainer, labeled, pseudo, validation=val,
            pseudo_epochs=1, finetune_epochs=1,
        )
        assert len(history["loss"]) == 2  # one epoch per stage

    def test_run_distillation_without_pseudo(self, classifier, tiny_docs):
        labeled = [LabeledDocument.from_gold(d) for d in tiny_docs[:2]]
        trainer = BlockTrainer(classifier, encoder_lr=1e-3, head_lr=1e-2, seed=0)
        history = run_distillation(trainer, labeled, [], finetune_epochs=1)
        assert len(history["loss"]) == 1
