"""Tests for document featurisation."""

import numpy as np
import pytest

from repro.core import Featurizer, ResuFormerConfig
from repro.corpus import VISUAL_DIM
from repro.docmodel import Page, ResumeDocument


class TestFeaturize:
    def test_shapes(self, featurizer, tiny_docs, config):
        features = featurizer.featurize(tiny_docs[0])
        m = min(tiny_docs[0].num_sentences, config.max_document_sentences)
        t = features.max_tokens
        # Width adapts to the document's longest sentence, capped by config.
        assert t <= config.max_sentence_tokens + 1
        assert features.token_ids.shape == (m, t)
        assert features.token_mask.shape == (m, t)
        assert features.token_layout.shape == (m, t, 7)
        assert features.sentence_layout.shape == (m, 7)
        assert features.sentence_visual.shape == (m, VISUAL_DIM)
        assert features.num_sentences == m

    def test_width_tracks_longest_sentence(self, featurizer, tiny_docs):
        features = featurizer.featurize(tiny_docs[0])
        longest = int(features.token_mask.sum(axis=1).max())
        assert features.max_tokens == longest

    def test_cls_first(self, featurizer, tiny_docs, tokenizer):
        features = featurizer.featurize(tiny_docs[0])
        assert np.all(features.token_ids[:, 0] == tokenizer.vocab.cls_id)
        assert np.all(features.token_mask[:, 0] == 1)

    def test_padding_zero(self, featurizer, tiny_docs):
        features = featurizer.featurize(tiny_docs[0])
        pad = features.token_mask == 0
        assert np.all(features.token_ids[pad] == 0)

    def test_layout_buckets_in_range(self, featurizer, tiny_docs, config):
        features = featurizer.featurize(tiny_docs[0])
        spatial = features.token_layout[..., :6]
        assert spatial.min() >= 0
        assert spatial.max() < config.layout_buckets

    def test_page_feature_matches_sentence_page(self, featurizer, tiny_docs):
        doc = tiny_docs[0]
        features = featurizer.featurize(doc)
        for row, sentence in enumerate(doc.sentences):
            assert features.sentence_layout[row, 6] == min(sentence.page, 15)

    def test_segments_alternate(self, featurizer, tiny_docs, config):
        features = featurizer.featurize(tiny_docs[0])
        expected = np.arange(features.num_sentences) % config.num_segments
        np.testing.assert_array_equal(features.sentence_segments, expected)

    def test_truncates_long_documents(self, tokenizer, tiny_docs):
        config = ResuFormerConfig(
            vocab_size=len(tokenizer.vocab),
            hidden_dim=32,
            sentence_layers=1,
            sentence_heads=2,
            document_layers=1,
            document_heads=2,
            visual_proj_dim=8,
            max_document_sentences=5,
        )
        features = Featurizer(tokenizer, config).featurize(tiny_docs[0])
        assert features.num_sentences == 5

    def test_empty_document_rejected(self, featurizer):
        empty = ResumeDocument("empty", [Page(1)], [])
        with pytest.raises(ValueError):
            featurizer.featurize(empty)

    def test_subwords_share_word_layout(self, featurizer, tiny_docs):
        doc = tiny_docs[0]
        features = featurizer.featurize(doc)
        # Row 0: all non-CLS token boxes must coincide with some token box
        # of the sentence (subwords inherit the word box).
        sentence = doc.sentences[0]
        page = doc.page(sentence.page)
        valid = int(features.token_mask[0].sum())
        word_tuples = {
            tuple(
                featurizer._layout_tuple(
                    t.bbox.normalized(page.width, page.height), t.page
                )
            )
            for t in sentence.tokens
        }
        for position in range(1, valid):
            assert tuple(features.token_layout[0, position]) in word_tuples
