"""Smoke checks for the paper-scale configuration (Section V-A2 values)."""

import numpy as np
import pytest

from repro.core import ResuFormerConfig


class TestPaperScaleConfig:
    def test_values_match_section_va2(self):
        config = ResuFormerConfig.paper_scale()
        assert config.hidden_dim == 768
        assert config.sentence_layers == 6
        assert config.sentence_heads == 12
        assert config.document_layers == 4
        assert config.max_sentence_tokens == 55
        assert config.max_document_sentences == 350
        assert config.temperature == 0.8
        assert (config.lambda_wp, config.lambda_cl, config.lambda_ns) == (
            0.4, 1.0, 0.6,
        )
        config.validate()

    def test_document_dim_divisible(self):
        config = ResuFormerConfig.paper_scale()
        assert config.document_dim % config.document_heads == 0

    @pytest.mark.slow
    def test_paper_scale_forward_pass(self):
        # One forward pass at full width proves the architecture scales;
        # excluded from the default run via the 'slow' marker.
        from repro.core import Featurizer, HierarchicalEncoder
        from repro.corpus import ContentConfig, ResumeGenerator
        from repro.text import WordPieceTokenizer

        doc = ResumeGenerator(seed=1, content_config=ContentConfig.tiny()).batch(1)[0]
        tokenizer = WordPieceTokenizer.train(
            (s.text for s in doc.sentences), vocab_size=300, min_frequency=1
        )
        config = ResuFormerConfig.paper_scale()
        config.vocab_size = len(tokenizer.vocab)
        encoder = HierarchicalEncoder(config, rng=np.random.default_rng(0))
        features = Featurizer(tokenizer, config).featurize(doc)
        out = encoder(features)
        assert out.contextual.shape == (doc.num_sentences, config.document_dim)
