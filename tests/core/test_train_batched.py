"""Batched training must never drift from per-document training.

The contract of the mini-batch engine: every batched loss kernel returns
the *mean of the per-document losses*, so one batched optimizer step on B
documents sees the averaged per-document gradients.  These tests pin that
parity — for the block classifier's CRF loss and gradients, and for all
three pre-training objectives under shared (injected) randomness — plus
the engine mechanics (gradient accumulation, weighted windows) and the
static-slot cache's weakref guard.
"""

import gc

import numpy as np
import pytest

from repro.core import (
    BlockClassifier,
    BlockTrainer,
    GradAccumulator,
    LabeledDocument,
    Pretrainer,
    collate_documents,
    collate_labels,
    iter_minibatches,
    masked_copy,
)
from repro.nn import AdamW, ParamGroup, Tensor, concat


@pytest.fixture()
def classifier(encoder, featurizer):
    return BlockClassifier(
        encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(9)
    )


@pytest.fixture()
def pretrainer(encoder, featurizer):
    return Pretrainer(encoder, featurizer, seed=0)


@pytest.fixture()
def doc_features(featurizer, tiny_docs):
    return [featurizer.featurize(d) for d in tiny_docs[:3]]


@pytest.fixture()
def labeled(tiny_docs):
    return [LabeledDocument.from_gold(d) for d in tiny_docs[:3]]


class TestCollateLabels:
    def test_pads_and_aligns(self, doc_features, labeled):
        labels = collate_labels(doc_features, [item.labels for item in labeled])
        assert labels.shape == (3, max(f.num_sentences for f in doc_features))
        for row, (f, item) in enumerate(zip(doc_features, labeled)):
            m = f.num_sentences
            np.testing.assert_array_equal(labels[row, :m], item.labels[:m])
            assert (labels[row, m:] == 0).all()

    def test_too_few_labels_rejected(self, doc_features):
        with pytest.raises(ValueError):
            collate_labels(doc_features, [[0], [0], [0]])

    def test_misaligned_lengths_rejected(self, doc_features, labeled):
        with pytest.raises(ValueError):
            collate_labels(doc_features, [labeled[0].labels])


class TestBlockLossParity:
    def test_loss_batch_equals_mean_of_per_document(
        self, classifier, doc_features, labeled
    ):
        classifier.train()
        batch = collate_documents(doc_features)
        labels = collate_labels(doc_features, [item.labels for item in labeled])
        batched = float(classifier.loss_batch(batch, labels).data)
        singles = [
            float(classifier.loss(f, item.labels).data)
            for f, item in zip(doc_features, labeled)
        ]
        assert batched == pytest.approx(np.mean(singles), abs=1e-9)

    def test_batched_step_matches_averaged_per_document_gradients(
        self, classifier, doc_features, labeled
    ):
        classifier.train()
        parameters = classifier.parameters()

        batch = collate_documents(doc_features)
        labels = collate_labels(doc_features, [item.labels for item in labeled])
        for p in parameters:
            p.grad = None
        classifier.loss_batch(batch, labels).backward()
        batched_grads = [None if p.grad is None else p.grad.copy() for p in parameters]

        for p in parameters:
            p.grad = None
        scale = 1.0 / len(doc_features)
        for f, item in zip(doc_features, labeled):
            (classifier.loss(f, item.labels) * scale).backward()
        for p, batched in zip(parameters, batched_grads):
            reference = np.zeros_like(p.data) if p.grad is None else p.grad
            got = np.zeros_like(p.data) if batched is None else batched
            np.testing.assert_allclose(got, reference, atol=1e-8)


class TestPretrainParity:
    def test_mllm_batched_equals_per_document(self, pretrainer, doc_features):
        batch = collate_documents(doc_features)
        vocab = pretrainer.featurizer.tokenizer.vocab
        rng = np.random.default_rng(7)
        corruption = masked_copy(
            batch.token_ids,
            batch.token_mask,
            pretrainer.config.token_mask_prob,
            vocab.mask_id,
            len(vocab),
            rng,
        )
        batched = pretrainer.mllm_loss_batch(batch, corruption=corruption)
        corrupted, selected = corruption
        singles = []
        offset = 0
        for f in doc_features:
            m, t = f.num_sentences, f.max_tokens
            term = pretrainer.mllm_loss(
                f,
                corruption=(
                    corrupted[offset : offset + m, :t],
                    selected[offset : offset + m, :t],
                ),
            )
            if term is not None:
                singles.append(float(term.data))
            offset += m
        assert float(batched.data) == pytest.approx(np.mean(singles), abs=1e-9)

    def test_scl_and_dnsp_batched_equal_per_document(
        self, pretrainer, doc_features
    ):
        config = pretrainer.config
        batch = collate_documents(doc_features)
        rng = np.random.default_rng(8)

        per_doc_slots = []
        slots = np.zeros((batch.batch_size, batch.max_sentences), dtype=bool)
        anchors = []
        for row, f in enumerate(doc_features):
            m = f.num_sentences
            count = min(max(int(round(config.sentence_mask_ratio * m)), 1), m - 1)
            doc_slots = np.zeros(m, dtype=bool)
            doc_slots[rng.choice(m, size=count, replace=False)] = True
            per_doc_slots.append(doc_slots)
            slots[row, :m] = doc_slots
            count = min(max(int(round(config.next_sentence_ratio * m)), 1), m - 1)
            anchors.append(rng.choice(m - 1, size=count, replace=False))

        encoded = pretrainer.encoder.encode_batch_pretrain(batch, mask_slots=slots)
        rows, cols = np.nonzero(slots)
        batched_cl = Pretrainer.info_nce(
            encoded.contextual[rows, cols],
            encoded.fused[rows, cols],
            config.temperature,
        )
        batched_ns = pretrainer.dnsp_loss_batch(
            encoded.contextual, batch.lengths, anchors=anchors
        )

        predicted, targets, ns_terms = [], [], []
        for f, doc_slots, doc_anchors in zip(doc_features, per_doc_slots, anchors):
            p, t, enc = pretrainer.scl_pairs(f, slots=doc_slots)
            predicted.append(p)
            targets.append(t)
            term = pretrainer.dnsp_loss(enc.contextual, anchors=doc_anchors)
            if term is not None:
                ns_terms.append(float(term.data))
        reference_cl = Pretrainer.info_nce(
            concat(predicted, axis=0), concat(targets, axis=0), config.temperature
        )

        assert float(batched_cl.data) == pytest.approx(
            float(reference_cl.data), abs=1e-9
        )
        assert float(batched_ns.data) == pytest.approx(np.mean(ns_terms), abs=1e-9)

    def test_pretrain_step_reports_batched_losses(self, pretrainer, doc_features):
        losses = pretrainer.pretrain_step(doc_features)
        assert {"wp", "cl", "ns", "total"} <= set(losses)
        assert all(np.isfinite(v) for v in losses.values())


class TestMaskedCopyFloor:
    def test_random_floor_respected(self):
        rng = np.random.default_rng(0)
        ids = np.full((200, 30), 50, dtype=int)
        mask = np.ones_like(ids, dtype=float)
        corrupted, selected = masked_copy(
            ids, mask, 0.9, mask_id=4, vocab_size=60, rng=rng, random_floor=40
        )
        randoms = corrupted[selected & (corrupted != 4) & (corrupted != 50)]
        assert randoms.size > 0
        assert randoms.min() >= 40

    def test_default_floor_is_first_non_special(self):
        # mask_id + 1 reproduces the historical behaviour (specials at 0-4).
        rng = np.random.default_rng(1)
        ids = np.full((200, 30), 50, dtype=int)
        mask = np.ones_like(ids, dtype=float)
        corrupted, selected = masked_copy(
            ids, mask, 0.9, mask_id=4, vocab_size=60, rng=rng
        )
        randoms = corrupted[selected & (corrupted != 4) & (corrupted != 50)]
        assert randoms.min() >= 5

    def test_pretrainer_derives_floor_from_vocab(self, pretrainer):
        vocab = pretrainer.featurizer.tokenizer.vocab
        from repro.text.vocab import SPECIAL_TOKENS

        expected = max(vocab.token_to_id(t) for t in SPECIAL_TOKENS) + 1
        assert pretrainer._random_token_floor == expected


class TestStaticSlotCache:
    def test_weakref_guard_never_aliases_recycled_ids(
        self, encoder, featurizer, tiny_docs
    ):
        pre = Pretrainer(encoder, featurizer, seed=0, dynamic_sentence_masking=False)
        features = featurizer.featurize(tiny_docs[0])
        pre.scl_pairs(features)
        key = id(features)
        assert key in pre._static_slots
        del features
        featurizer.cache.clear()
        gc.collect()
        # The entry for the dead object must not answer for a live lookup.
        assert key not in pre._static_slots

    def test_eviction_is_bounded(self, encoder, featurizer, tiny_docs):
        pre = Pretrainer(encoder, featurizer, seed=0, dynamic_sentence_masking=False)
        pre._static_slots.maxsize = 2
        kept = [featurizer.featurize(d) for d in tiny_docs[:3]]
        for f in kept:
            pre._slots_for(f)
        assert len(pre._static_slots) == 2
        assert id(kept[0]) not in pre._static_slots
        assert id(kept[2]) in pre._static_slots


class TestGradAccumulator:
    def _make(self, accumulation):
        param = Tensor(np.zeros(3), requires_grad=True)
        optimizer = AdamW([ParamGroup([param], 1e-2)], weight_decay=0.0)
        engine = GradAccumulator(
            optimizer, [param], max_grad_norm=None, accumulation=accumulation
        )
        return param, engine

    def test_steps_every_window(self):
        param, engine = self._make(accumulation=2)
        loss = (param * Tensor(np.ones(3))).sum()
        assert engine.backward(loss) is False
        assert engine.backward((param * Tensor(np.ones(3))).sum()) is True
        assert engine.steps == 1

    def test_weighted_mean_gradient(self):
        param, engine = self._make(accumulation=2)
        # Two micro-batches of 3 and 1 documents with mean-gradients 1 and 5:
        # the window gradient must be the document-weighted mean, 2.0.
        engine.backward((param * Tensor(np.full(3, 1.0))).sum(), weight=3)
        grads = []
        original_step = engine.optimizer.step

        def capture():
            grads.append(param.grad.copy())
            original_step()

        engine.optimizer.step = capture
        engine.backward((param * Tensor(np.full(3, 5.0))).sum(), weight=1)
        np.testing.assert_allclose(grads[0], np.full(3, 2.0))

    def test_flush_applies_partial_window(self):
        param, engine = self._make(accumulation=4)
        engine.backward((param * Tensor(np.ones(3))).sum())
        assert engine.steps == 0
        assert engine.flush() is True
        assert engine.steps == 1
        assert engine.flush() is False

    def test_rejects_bad_inputs(self):
        param, engine = self._make(accumulation=1)
        with pytest.raises(ValueError):
            GradAccumulator(engine.optimizer, [param], accumulation=0)
        with pytest.raises(ValueError):
            engine.backward((param * Tensor(np.ones(3))).sum(), weight=0.0)


class TestMinibatchFit:
    def test_iter_minibatches_covers_everything(self):
        chunks = list(iter_minibatches(7, 3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert sorted(i for c in chunks for i in c) == list(range(7))
        with pytest.raises(ValueError):
            list(iter_minibatches(5, 0))

    def test_fit_with_grad_accumulation_trains(self, classifier, tiny_docs):
        labeled = [LabeledDocument.from_gold(d) for d in tiny_docs[:4]]
        trainer = BlockTrainer(classifier, seed=0)
        history = trainer.fit(
            labeled, epochs=2, batch_size=2, grad_accumulation=2
        )
        assert len(history["loss"]) == 2
        assert all(np.isfinite(v) for v in history["loss"])
