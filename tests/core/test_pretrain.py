"""Tests for the three pre-training objectives and the Pretrainer."""

import numpy as np
import pytest

from repro.core import (
    Pretrainer,
    PretrainObjectives,
    masked_copy,
)
from repro.nn import Tensor


@pytest.fixture()
def pretrainer(encoder, featurizer):
    return Pretrainer(encoder, featurizer, seed=0, learning_rate=1e-3)


@pytest.fixture()
def features(featurizer, tiny_docs):
    return [featurizer.featurize(d) for d in tiny_docs[:3]]


class TestMaskedCopy:
    def test_cls_never_masked(self):
        rng = np.random.default_rng(0)
        ids = np.arange(5, 55).reshape(5, 10)
        mask = np.ones_like(ids, dtype=float)
        corrupted, selected = masked_copy(ids, mask, 0.9, mask_id=4, vocab_size=60, rng=rng)
        assert not selected[:, 0].any()
        np.testing.assert_array_equal(corrupted[:, 0], ids[:, 0])

    def test_padding_never_masked(self):
        rng = np.random.default_rng(0)
        ids = np.ones((4, 8), dtype=int)
        mask = np.zeros_like(ids, dtype=float)
        _, selected = masked_copy(ids, mask, 0.9, mask_id=4, vocab_size=60, rng=rng)
        assert not selected.any()

    def test_mask_rate_roughly_respected(self):
        rng = np.random.default_rng(1)
        ids = np.ones((50, 40), dtype=int)
        mask = np.ones_like(ids, dtype=float)
        _, selected = masked_copy(ids, mask, 0.15, mask_id=4, vocab_size=60, rng=rng)
        rate = selected.mean()
        assert 0.10 < rate < 0.20

    def test_original_unchanged(self):
        rng = np.random.default_rng(2)
        ids = np.ones((4, 8), dtype=int) * 7
        mask = np.ones_like(ids, dtype=float)
        before = ids.copy()
        masked_copy(ids, mask, 0.5, mask_id=4, vocab_size=60, rng=rng)
        np.testing.assert_array_equal(ids, before)

    def test_corruption_mix(self):
        rng = np.random.default_rng(3)
        ids = np.full((80, 40), 9, dtype=int)
        mask = np.ones_like(ids, dtype=float)
        corrupted, selected = masked_copy(ids, mask, 0.5, mask_id=4, vocab_size=60, rng=rng)
        changed = corrupted[selected]
        # ~80% [MASK], ~10% random, ~10% unchanged.
        frac_mask = (changed == 4).mean()
        frac_keep = (changed == 9).mean()
        assert 0.7 < frac_mask < 0.9
        assert 0.03 < frac_keep < 0.2


class TestObjectives:
    def test_mllm_loss_positive(self, pretrainer, features):
        loss = pretrainer.mllm_loss(features[0])
        assert loss is not None
        assert float(loss.data) > 0

    def test_scl_pairs_shapes(self, pretrainer, features, config):
        predicted, targets, encoded = pretrainer.scl_pairs(features[0])
        assert predicted.shape == targets.shape
        assert predicted.shape[1] == config.document_dim
        k = predicted.shape[0]
        m = features[0].num_sentences
        assert 1 <= k <= max(int(round(0.2 * m)), 1)

    def test_info_nce_prefers_aligned(self):
        aligned = Tensor(np.eye(4) * 5)
        targets = Tensor(np.eye(4) * 5)
        loss_aligned = Pretrainer.info_nce(aligned, targets, temperature=1.0)
        shuffled = Tensor(np.roll(np.eye(4) * 5, 1, axis=0))
        loss_shuffled = Pretrainer.info_nce(shuffled, targets, temperature=1.0)
        assert float(loss_aligned.data) < float(loss_shuffled.data)

    def test_dnsp_loss_positive(self, pretrainer, features, encoder):
        encoded = encoder(features[0])
        loss = pretrainer.dnsp_loss(encoded.contextual)
        assert loss is not None
        assert float(loss.data) > 0

    def test_dnsp_skips_tiny_documents(self, pretrainer):
        short = Tensor(np.zeros((2, pretrainer.config.document_dim)))
        assert pretrainer.dnsp_loss(short) is None


class TestPretrainStep:
    def test_reports_all_losses(self, pretrainer, features):
        losses = pretrainer.pretrain_step(features)
        assert {"wp", "cl", "ns", "total"} <= set(losses)

    def test_updates_parameters(self, pretrainer, features, encoder):
        before = encoder.sentence_encoder.text_embedding.word.weight.data.copy()
        pretrainer.pretrain_step(features)
        after = encoder.sentence_encoder.text_embedding.word.weight.data
        assert not np.allclose(before, after)

    def test_objective_toggles(self, encoder, featurizer, features):
        pre = Pretrainer(
            encoder,
            featurizer,
            objectives=PretrainObjectives(wmp=False, scl=True, dnsp=False),
            seed=0,
        )
        losses = pre.pretrain_step(features)
        assert "wp" not in losses
        assert "ns" not in losses
        assert "cl" in losses

    def test_all_disabled_raises(self, encoder, featurizer, features):
        pre = Pretrainer(
            encoder,
            featurizer,
            objectives=PretrainObjectives(False, False, False),
            seed=0,
        )
        with pytest.raises(ValueError):
            pre.pretrain_step(features)

    def test_static_masking_reuses_slots(self, encoder, featurizer, tiny_docs):
        pre = Pretrainer(
            encoder, featurizer, seed=0, dynamic_sentence_masking=False
        )
        features = featurizer.featurize(tiny_docs[0])
        first = pre.scl_pairs(features)
        second = pre.scl_pairs(features)
        slots = pre._static_slots[id(features)]
        assert slots is not None
        np.testing.assert_array_equal(
            first[0].shape, second[0].shape
        )
        # Same slots selected both times (dynamic masking would resample).
        assert id(features) in pre._static_slots

    def test_dynamic_masking_resamples(self, encoder, featurizer, tiny_docs):
        pre = Pretrainer(encoder, featurizer, seed=0)
        features = featurizer.featurize(tiny_docs[0])
        seen = set()
        for _ in range(6):
            slots = pre._mask_slots(features.num_sentences, 0.2)
            seen.add(tuple(np.where(slots)[0]))
        assert len(seen) > 1

    def test_fit_reduces_loss(self, encoder, featurizer, tiny_docs):
        pre = Pretrainer(encoder, featurizer, seed=0, learning_rate=3e-3)
        history = pre.fit(tiny_docs[:4], epochs=4, batch_size=4)
        first = history[0]["total"]
        last = history[-1]["total"]
        assert last < first
