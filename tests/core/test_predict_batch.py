"""Batched inference: predict_batch must never drift from predict.

The fast path (cross-document padding + batched kernels) and the reference
path (one document at a time) must agree label-for-label; the featurization
cache must make repeated sweeps free.
"""

import numpy as np
import pytest

from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    LabeledDocument,
    collate_documents,
)
from repro.docmodel import BLOCK_SCHEME


@pytest.fixture()
def classifier(encoder, featurizer):
    return BlockClassifier(
        encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(9)
    )


class TestPredictBatch:
    def test_smoke_single_document_equals_predict(self, classifier, tiny_docs):
        # The tier-1 guard: the fast path can never drift from the
        # reference path.
        doc = tiny_docs[0]
        assert classifier.predict_batch([doc]) == [classifier.predict(doc)]

    def test_ragged_batch_equals_per_document(self, classifier, tiny_docs):
        expected = [classifier.predict(d) for d in tiny_docs]
        assert classifier.predict_batch(tiny_docs, batch_size=4) == expected

    def test_batch_size_one_chunks_equal_full_batch(self, classifier, tiny_docs):
        docs = tiny_docs[:3]
        assert classifier.predict_batch(docs, batch_size=1) == (
            classifier.predict_batch(docs, batch_size=8)
        )

    def test_rejects_bad_batch_size(self, classifier, tiny_docs):
        with pytest.raises(ValueError):
            classifier.predict_batch(tiny_docs, batch_size=0)

    def test_predict_batch_runs_under_no_grad(
        self, classifier, tiny_docs, monkeypatch
    ):
        # Regression guard: every graph-building call inside predict_batch
        # must see gradients disabled, or serving leaks autograd history.
        from repro.nn.tensor import is_grad_enabled

        seen = []
        original = BlockClassifier.emissions_batch

        def spy(self, batch):
            seen.append(is_grad_enabled())
            return original(self, batch)

        monkeypatch.setattr(BlockClassifier, "emissions_batch", spy)
        classifier.predict_batch(tiny_docs[:2])
        assert seen and not any(seen)

    def test_emissions_batch_shape_and_equivalence(
        self, classifier, featurizer, tiny_docs
    ):
        docs = tiny_docs[:3]
        batch = collate_documents([featurizer.featurize(d) for d in docs])
        classifier.eval()
        from repro.nn import no_grad

        with no_grad():
            batched = classifier.emissions_batch(batch)
            assert batched.shape == (
                batch.batch_size,
                batch.max_sentences,
                BLOCK_SCHEME.num_labels,
            )
            for row, doc in enumerate(docs):
                single = classifier.emissions(featurizer.featurize(doc))
                m = batch.lengths[row]
                np.testing.assert_allclose(
                    batched.numpy()[row, :m], single.numpy()[0], atol=1e-10
                )


class TestCollate:
    def test_masks_and_gather(self, featurizer, tiny_docs):
        features = [featurizer.featurize(d) for d in tiny_docs[:3]]
        batch = collate_documents(features)
        assert batch.batch_size == 3
        assert batch.num_sentences == sum(f.num_sentences for f in features)
        np.testing.assert_array_equal(
            batch.sentence_mask.sum(axis=1), batch.lengths
        )
        # Gathered token rows must round-trip to each document's features.
        offset = 0
        for row, f in enumerate(features):
            m, t = f.num_sentences, f.max_tokens
            np.testing.assert_array_equal(
                batch.gather_index[row, :m], np.arange(offset, offset + m)
            )
            np.testing.assert_array_equal(
                batch.token_ids[offset : offset + m, :t], f.token_ids
            )
            offset += m

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            collate_documents([])


class TestFeatureCacheIntegration:
    def test_trainer_featurizes_each_document_once(self, tokenizer, config, tiny_docs):
        # Fresh featurizer so counters start at zero.
        from repro.core import HierarchicalEncoder

        featurizer = Featurizer(tokenizer, config)
        encoder = HierarchicalEncoder(config, rng=np.random.default_rng(3))
        model = BlockClassifier(
            encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(9)
        )
        train = [LabeledDocument.from_gold(d) for d in tiny_docs[:3]]
        validation = [LabeledDocument.from_gold(d) for d in tiny_docs[3:5]]
        trainer = BlockTrainer(model, seed=0)
        trainer.fit(train, validation=validation, epochs=2, patience=5)

        info = featurizer.cache.info()
        # Every document is computed exactly once, no matter how many
        # epochs re-visit it for training loss or validation accuracy.
        assert info["misses"] == len(train) + len(validation)
        assert info["hits"] > 0

    def test_repeated_predict_hits_cache(self, tokenizer, config, tiny_docs):
        from repro.core import HierarchicalEncoder

        featurizer = Featurizer(tokenizer, config)
        encoder = HierarchicalEncoder(config, rng=np.random.default_rng(3))
        model = BlockClassifier(
            encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(9)
        )
        doc = tiny_docs[0]
        first = model.predict(doc)
        assert featurizer.cache.misses == 1
        assert model.predict(doc) == first
        assert featurizer.cache.hits >= 1
        assert featurizer.cache.misses == 1

    def test_lru_eviction_and_identity_guard(self, tokenizer, config, tiny_docs):
        featurizer = Featurizer(tokenizer, config, cache_size=2)
        for doc in tiny_docs[:3]:
            featurizer.featurize(doc)
        assert len(featurizer.cache) == 2
        # The oldest entry was evicted; featurizing it again recomputes.
        misses = featurizer.cache.misses
        featurizer.featurize(tiny_docs[0])
        assert featurizer.cache.misses == misses + 1

    def test_cache_disabled(self, tokenizer, config, tiny_docs):
        featurizer = Featurizer(tokenizer, config, cache_size=0)
        assert featurizer.cache is None
        features = featurizer.featurize(tiny_docs[0])
        assert features.num_sentences > 0


class TestNerPredictBatch:
    def test_matches_predict(self, tokenizer):
        from repro.corpus.datasets import NerExample
        from repro.ner import NerConfig, NerTagger

        config = NerConfig(
            vocab_size=len(tokenizer.vocab),
            hidden_dim=16,
            layers=1,
            heads=2,
            lstm_hidden=8,
            dropout=0.0,
        )
        tagger = NerTagger(config, tokenizer, rng=np.random.default_rng(4))
        examples = [
            NerExample(words=["john", "doe"], labels=["B-NAME", "I-NAME"], block_tag="PI"),
            NerExample(
                words=["python", "and", "java"], labels=["B-SKILL", "O", "B-SKILL"], block_tag="SKILL"
            ),
            NerExample(words=["paris"], labels=["B-LOC"], block_tag="PI"),
        ]
        batched = tagger.predict_batch(examples, batch_size=2)
        assert len(batched) == len(examples)
        for got, example in zip(batched, examples):
            assert len(got) == len(example.words)
        # A chunk boundary must not change predictions.
        assert batched == tagger.predict_batch(examples, batch_size=3)
