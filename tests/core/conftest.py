"""Shared fixtures for core-model tests: a tiny corpus, tokenizer, config."""

import numpy as np
import pytest

from repro.core import Featurizer, HierarchicalEncoder, ResuFormerConfig
from repro.corpus import ContentConfig, ResumeGenerator
from repro.text import WordPieceTokenizer


@pytest.fixture(scope="session")
def tiny_docs():
    return ResumeGenerator(seed=7, content_config=ContentConfig.tiny()).batch(6)


@pytest.fixture(scope="session")
def tokenizer(tiny_docs):
    texts = [s.text for d in tiny_docs for s in d.sentences]
    return WordPieceTokenizer.train(texts, vocab_size=500, min_frequency=1)


@pytest.fixture(scope="session")
def config(tokenizer):
    return ResuFormerConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_dim=32,
        sentence_layers=1,
        sentence_heads=2,
        document_layers=1,
        document_heads=2,
        visual_proj_dim=8,
        dropout=0.0,
    )


@pytest.fixture(scope="session")
def featurizer(tokenizer, config):
    return Featurizer(tokenizer, config)


@pytest.fixture()
def encoder(config):
    return HierarchicalEncoder(config, rng=np.random.default_rng(3))
