"""Quantized + fused serving: parity gates and telemetry integrity.

The fused float64 path must stay bit-identical to the graph path; the
int8 path trades exactness for speed and is held to an entity-F1 parity
gate (the same :mod:`repro.obs.compare` machinery CI uses); and serving
in either mode must keep the observability contract — stage spans, the
fused-batch counter and the feature-cache hit-rate gauge — intact.
"""

import dataclasses

import numpy as np
import pytest

from repro import obs
from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    collate_documents,
)
from repro.docmodel import BLOCK_SCHEME
from repro.eval import entity_prf
from repro.nn import no_grad
from repro.obs.compare import Gate, compare_summaries

#: Relative entity-F1 the int8 path may lose versus float serving.
F1_TOLERANCE = 0.05


def build_model(config, tokenizer):
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(3))
    return BlockClassifier(
        encoder, featurizer, lstm_hidden=16, rng=np.random.default_rng(9)
    )


@pytest.fixture(scope="module")
def trained_state(config, tokenizer, tiny_docs):
    """Briefly fine-tuned float weights, shared by every parity test.

    An untrained head decodes near-uniform emissions whose argmax flips
    under any rounding change; training first gives the labels real
    margins, so parity failures mean broken kernels, not noise.
    """
    model = build_model(config, tokenizer)
    labeled = [LabeledDocument.from_gold(d) for d in tiny_docs]
    BlockTrainer(model, seed=0).fit(
        labeled[:4], validation=labeled[4:], epochs=2, patience=5
    )
    return model.state_dict()


def load_model(config, tokenizer, trained_state, precision="float64"):
    config = dataclasses.replace(config, inference_precision=precision)
    model = build_model(config, tokenizer)
    model.load_state_dict(trained_state)
    return model


class TestFloat64Parity:
    def test_fused_raw_path_matches_graph_path(
        self, config, tokenizer, tiny_docs, trained_state
    ):
        # Individual kernels are bitwise-identical to the compositional
        # ops (tests/nn/test_attention.py); end to end the only drift is
        # GEMM blocking, which varies with buffer shape — a few ulp, far
        # inside the 1e-6 parity budget.
        model = load_model(config, tokenizer, trained_state)
        model.eval()
        batch = collate_documents(
            [model.featurizer.featurize(d) for d in tiny_docs[:4]]
        )
        with no_grad():
            fused = model.emissions_batch(batch).numpy()
            from repro.nn.quantize import set_fused_inference

            set_fused_inference(model, False)
            graph = model.emissions_batch(batch).numpy()
        np.testing.assert_allclose(fused, graph, atol=1e-12)


class TestInt8Parity:
    def test_f1_gate_against_float_labels(
        self, config, tokenizer, tiny_docs, trained_state
    ):
        float_model = load_model(config, tokenizer, trained_state)
        float_labels = float_model.predict_batch(tiny_docs)

        int8_model = load_model(config, tokenizer, trained_state, "int8")
        int8_labels = int8_model.predict_batch(tiny_docs)
        assert int8_model._quantized

        # Score the quantized labels against the float labels as
        # pseudo-gold, then hold the F1 to the same rel_decrease gate the
        # CI quantization-parity job enforces.
        score = entity_prf(float_labels, int8_labels, BLOCK_SCHEME)
        result = compare_summaries(
            {"block_f1.int8_parity": 1.0},
            {"block_f1.int8_parity": score.f1},
            gates=[Gate("block_f1.*", F1_TOLERANCE, "rel_decrease")],
        )
        assert result["ok"], result["regressions"]

    def test_calibrated_labels_are_batch_independent(
        self, config, tokenizer, tiny_docs, trained_state
    ):
        model = load_model(config, tokenizer, trained_state, "int8")
        # First call quantizes and calibrates on a slice of its input;
        # from then on activation scales are frozen.
        baseline = model.predict_batch(tiny_docs, batch_size=8)
        assert model.predict_batch(tiny_docs, batch_size=2) == baseline
        assert model.predict_batch(tiny_docs, batch_size=1) == baseline
        assert [model.predict(d) for d in tiny_docs] == baseline

    def test_dequantize_restores_float_serving(
        self, config, tokenizer, tiny_docs, trained_state
    ):
        float_model = load_model(config, tokenizer, trained_state)
        expected = float_model.predict_batch(tiny_docs[:3])

        model = load_model(config, tokenizer, trained_state, "int8")
        model.predict_batch(tiny_docs[:3])
        model.dequantize()
        # Back on float weights (the config still says int8, but the
        # explicit dequantize wins until the next lazy ensure re-quantizes,
        # so compare emissions directly under float64 kernels).
        model.encoder.config = dataclasses.replace(
            model.encoder.config, inference_precision="float64"
        )
        assert model.predict_batch(tiny_docs[:3]) == expected


class TestFloat32Mode:
    def test_labels_stay_close_to_float64(
        self, config, tokenizer, tiny_docs, trained_state
    ):
        float_model = load_model(config, tokenizer, trained_state)
        float_labels = float_model.predict_batch(tiny_docs)
        narrow = load_model(config, tokenizer, trained_state, "float32")
        narrow_labels = narrow.predict_batch(tiny_docs)
        score = entity_prf(float_labels, narrow_labels, BLOCK_SCHEME)
        assert score.f1 >= 1.0 - F1_TOLERANCE


class TestServingTelemetry:
    def test_spans_counters_and_gauges_survive_fused_int8(
        self, config, tokenizer, tiny_docs, trained_state
    ):
        model = load_model(config, tokenizer, trained_state, "int8")
        session = obs.Telemetry()
        with obs.use_telemetry(session):
            model.predict_batch(tiny_docs, batch_size=4)
            model.predict_batch(tiny_docs, batch_size=4)  # cache-warm sweep
        model.featurizer.cache.export_metrics(session.metrics)
        summary = session.summary()

        spans = summary["spans"]
        for name in ("predict_batch", "featurize", "encode", "decode"):
            assert name in spans and spans[name]["calls"] >= 1, name

        metrics = summary["metrics"]
        def value(name):
            return metrics[name]["series"][0]["value"]

        assert value("encode.fused.batches") >= 1
        assert value("quantize.layers") > 0
        assert value("quantize.calibrated_layers") > 0
        assert value("quantize.gemm_calls") > 0
        assert value("inference.documents") == 2 * len(tiny_docs)
        # The second sweep re-reads every document from the feature cache.
        assert value("feature_cache.hit_rate") >= 0.5
