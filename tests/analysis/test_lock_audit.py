"""The runtime lock-order sanitizer: seeded inversions must produce a
cycle, disciplined code must not, and the factory patch must scope and
restore cleanly."""

import threading
import time

from repro.analysis.lock_audit import (
    InstrumentedLock,
    LockAudit,
    _module_matches,
    audit_locks,
)


def make_locks(audit, *sites):
    return [InstrumentedLock(threading.Lock(), site, audit) for site in sites]


class TestOrderGraph:
    def test_seeded_inversion_detected(self):
        """Two locks taken in both orders on two threads: the canonical
        deadlock shape the sanitizer exists to catch."""
        audit = LockAudit()
        a, b = make_locks(audit, "mod.alpha:1", "mod.beta:2")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()

        report = audit.report()
        assert not report["ok"]
        assert len(report["cycles"]) == 1
        cycle = report["cycles"][0]
        assert cycle["sites"] == ["mod.alpha:1", "mod.beta:2"]
        assert set(cycle["edges"]) == {
            "mod.alpha:1 -> mod.beta:2",
            "mod.beta:2 -> mod.alpha:1",
        }
        for info in cycle["edges"].values():
            assert info["stack"]  # evidence for the report

    def test_consistent_order_clean(self):
        audit = LockAudit()
        a, b = make_locks(audit, "mod.alpha:1", "mod.beta:2")
        for _ in range(3):
            with a:
                with b:
                    pass
        report = audit.report()
        assert report["ok"] and report["cycles"] == []
        assert report["edges"]["mod.alpha:1 -> mod.beta:2"]["count"] == 3

    def test_three_site_cycle_detected(self):
        audit = LockAudit()
        a, b, c = make_locks(audit, "m.a:1", "m.b:2", "m.c:3")
        for first, second in ((a, b), (b, c), (c, a)):
            with first:
                with second:
                    pass
        cycles = audit.cycles()
        assert len(cycles) == 1
        assert cycles[0]["sites"] == ["m.a:1", "m.b:2", "m.c:3"]

    def test_same_site_nesting_not_a_cycle(self):
        # Two instances born at one line (per-metric locks): ordering
        # between them is data-dependent, tracked but never a cycle.
        audit = LockAudit()
        a, b = make_locks(audit, "mod.metric:61", "mod.metric:61")
        with a:
            with b:
                pass
        report = audit.report()
        assert report["ok"]
        assert report["same_site_nestings"]

    def test_rlock_reentry_makes_no_edge(self):
        audit = LockAudit()
        lock = InstrumentedLock(threading.RLock(), "mod.r:9", audit)
        with lock:
            with lock:
                pass
        report = audit.report()
        assert report["edges"] == {} and report["ok"]

    def test_failed_acquire_makes_no_edge(self):
        audit = LockAudit()
        a, b = make_locks(audit, "m.a:1", "m.b:2")
        held = threading.Event()
        done = threading.Event()

        def hold_b():
            with b:
                held.set()
                done.wait(timeout=5.0)

        holder = threading.Thread(target=hold_b)
        holder.start()
        held.wait(timeout=5.0)
        with a:
            assert b.acquire(blocking=False) is False
        done.set()
        holder.join()
        assert audit.report()["edges"] == {}


class TestHazards:
    def test_long_hold_recorded(self):
        audit = LockAudit(long_hold_seconds=0.01)
        (lock,) = make_locks(audit, "mod.slow:5")
        with lock:
            time.sleep(0.03)
        holds = audit.report()["long_holds"]
        assert holds and holds[0]["site"] == "mod.slow:5"
        assert holds[0]["seconds"] >= 0.01

    def test_acquire_while_holding_critical_lock_flagged(self):
        audit = LockAudit(critical_patterns=("parallel.pool",))
        pool_lock, metrics_lock = make_locks(
            audit, "repro.parallel.pool:177", "repro.obs.metrics:61"
        )
        with pool_lock:
            with metrics_lock:
                pass
        violations = audit.report()["critical_violations"]
        assert violations
        assert violations[0]["held"] == "repro.parallel.pool:177"
        assert violations[0]["acquired"] == "repro.obs.metrics:61"

    def test_reverse_direction_not_a_critical_violation(self):
        # Taking the pool lock while holding a telemetry lock is the
        # allowed direction (instrumented code calls into the pool).
        audit = LockAudit(critical_patterns=("parallel.pool",))
        pool_lock, metrics_lock = make_locks(
            audit, "repro.parallel.pool:177", "repro.obs.metrics:61"
        )
        with metrics_lock:
            with pool_lock:
                pass
        assert audit.report()["critical_violations"] == []


class TestFactoryPatch:
    def test_module_filter(self):
        assert _module_matches("repro.obs.metrics", ("repro",))
        assert _module_matches("tests.obs.test_alerts", ("tests",))
        assert _module_matches("test_alerts", ("test_",))
        assert not _module_matches("multiprocessing.queues", ("repro",))
        assert not _module_matches("reproduce.other", ("repro",))

    def test_patch_instruments_matching_modules_only(self):
        with audit_locks(modules=("tests", "test_")) as audit:
            instrumented = threading.Lock()
            assert isinstance(instrumented, InstrumentedLock)
        with audit_locks(modules=("no_such_module",)):
            plain = threading.Lock()
            assert not isinstance(plain, InstrumentedLock)
        assert audit.report()["locks_created"] == 1

    def test_factories_restored_after_exit(self):
        real_lock, real_rlock = threading.Lock, threading.RLock
        with audit_locks():
            assert threading.Lock is not real_lock
        assert threading.Lock is real_lock
        assert threading.RLock is real_rlock

    def test_wrapper_is_context_manager_with_locked(self):
        with audit_locks(modules=("tests", "test_")):
            lock = threading.Lock()
        assert lock.locked() is False
        with lock:
            assert lock.locked() is True
        assert lock.locked() is False

    def test_rlock_locked_fallback(self):
        audit = LockAudit()
        lock = InstrumentedLock(threading.RLock(), "m.r:1", audit)
        assert lock.locked() is False
        with lock:
            assert lock.locked() is True


class TestObsIntegration:
    def test_metrics_workload_has_no_cycles(self):
        """The CI contract in miniature: a threaded telemetry workload
        under the audit must come back acyclic."""
        with audit_locks() as audit:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()

            def drive():
                for step in range(50):
                    registry.counter("steps").inc()
                    registry.gauge("loss").set(float(step))
                    registry.histogram("latency").observe(step * 0.001)

            threads = [threading.Thread(target=drive) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            snapshot = registry.snapshot()

        report = audit.report()
        assert report["ok"], report["cycles"]
        assert report["locks_created"] > 0
        assert report["acquisitions"] > 0
        assert snapshot["steps"]["series"][0]["value"] == 200.0
