"""The interprocedural call graph: conservative, unambiguous resolution
across the linted file set — and the RN004 false-negative shapes it kills."""

import ast

from repro.analysis.callgraph import (
    CallGraph,
    build_call_graph,
    module_name_for,
)
from repro.analysis.lint import lint_source

MAIN = '''
from repro.pkg.helpers import compute, misc as other

def top():
    return compute(1)

class Base:
    def shared(self):
        return compute(2)

class Model(Base):
    def _score(self, x):
        return compute(x)

    def run(self, x):
        return self._score(x)

    def inherited(self):
        return self.shared()

def mutual_a():
    return mutual_b()

def mutual_b():
    return mutual_a()
'''

HELPERS = '''
def compute(x):
    return deep(x)

def deep(x):
    return x + 1

def misc(x):
    return x
'''


def graph():
    return build_call_graph(
        [
            ("src/repro/pkg/main.py", ast.parse(MAIN)),
            ("src/repro/pkg/helpers.py", ast.parse(HELPERS)),
        ]
    )


def first_call(g, module, name, cls=None):
    index = g._modules[module]
    info = index.methods[(cls, name)] if cls else index.functions[name]
    return info, next(c for c in ast.walk(info.node) if isinstance(c, ast.Call))


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for("src/repro/parallel/pool.py") == "repro.parallel.pool"

    def test_package_init(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_fallback_stem(self):
        assert module_name_for("scratch/example.py") == "example"


class TestResolution:
    def test_bare_name_same_module(self):
        g = graph()
        info, call = first_call(g, "repro.pkg.main", "mutual_a")
        target = g.resolve(call, info.module)
        assert target is not None and target.qualname == "repro.pkg.main::mutual_b"

    def test_imported_name_cross_module(self):
        g = graph()
        info, call = first_call(g, "repro.pkg.main", "top")
        target = g.resolve(call, info.module)
        assert target is not None and target.qualname == "repro.pkg.helpers::compute"

    def test_self_method(self):
        g = graph()
        info, call = first_call(g, "repro.pkg.main", "run", cls="Model")
        target = g.resolve(call, info.module, info.cls)
        assert target is not None and target.qualname == "repro.pkg.main::Model._score"

    def test_inherited_method_through_base(self):
        g = graph()
        info, call = first_call(g, "repro.pkg.main", "inherited", cls="Model")
        target = g.resolve(call, info.module, info.cls)
        assert target is not None and target.qualname == "repro.pkg.main::Base.shared"

    def test_unknown_name_unresolved(self):
        g = graph()
        call = ast.parse("mystery()").body[0].value
        assert g.resolve(call, "repro.pkg.main") is None


class TestCallsMatching:
    def is_deep(self, call, _graph):
        return isinstance(call.func, ast.Name) and call.func.id == "deep"

    def test_depth_zero_sees_own_body_only(self):
        g = graph()
        info, _ = first_call(g, "repro.pkg.main", "top")
        assert g.calls_matching(info, self.is_deep, max_depth=0) is None

    def test_one_hop_reports_call_site_in_asker(self):
        g = graph()
        info, call = first_call(g, "repro.pkg.helpers", "compute")
        # compute() itself calls deep() directly: hit is the direct call.
        assert g.calls_matching(info, self.is_deep, max_depth=0) is call
        # top() -> compute() -> deep(): the reported node is top's own
        # call to compute, not the line buried inside the helper.
        top_info, top_call = first_call(g, "repro.pkg.main", "top")
        assert g.calls_matching(top_info, self.is_deep, max_depth=1) is top_call

    def test_recursion_cycle_terminates(self):
        g = graph()
        info, _ = first_call(g, "repro.pkg.main", "mutual_a")
        assert g.calls_matching(info, lambda c, _g: False, max_depth=10) is None


class TestRN004Interprocedural:
    def test_helper_indirection_flagged(self):
        source = (
            "class Model:\n"
            "    def _score(self, docs):\n"
            "        return self.emissions(docs)\n"
            "    def predict(self, docs):\n"
            "        return self._score(docs)\n"
        )
        findings = lint_source(source)
        assert [f.code for f in findings] == ["RN004"]
        assert "_score" in findings[0].message

    def test_internally_guarded_helper_clean(self):
        source = (
            "class Model:\n"
            "    def _score(self, docs):\n"
            "        with no_grad():\n"
            "            return self.emissions(docs)\n"
            "    def predict(self, docs):\n"
            "        return self._score(docs)\n"
        )
        assert lint_source(source) == []

    def test_guarded_call_site_clean(self):
        source = (
            "class Model:\n"
            "    def _score(self, docs):\n"
            "        return self.emissions(docs)\n"
            "    def predict(self, docs):\n"
            "        with no_grad():\n"
            "            return self._score(docs)\n"
        )
        assert lint_source(source) == []
