"""Gradcheck: the sweep must pass on the real substrate, coverage must be
enforced for new ops, and a deliberately broken backward must be caught."""

import numpy as np
import pytest

from repro.analysis.gradcheck import (
    MAX_TOLERANCE,
    SPECS,
    _register_all_specs,
    discover_ops,
    gradcheck,
    run_sweep,
)
from repro.nn.tensor import Tensor


class TestGradcheckCore:
    def test_correct_op_passes(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        result = gradcheck(lambda x, y: x * y, [a, b], name="mul-broadcast")
        assert result.ok, result.render()
        assert result.checked == 9

    def test_broken_backward_fails(self):
        """The seeded mutation: a backward closure with the wrong operand
        must produce failures, proving the checker has teeth."""
        rng = np.random.default_rng(1)

        def broken_mul(a, b):
            out = a.data * b.data

            def backward(grad):
                # Deliberately wrong backward — the subject under test.
                # repro-lint: disable=RN002
                a._accumulate(grad * b.data)
                b._accumulate(grad * b.data)  # repro-lint: disable=RN002

            return a._make(out, (a, b), backward)

        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        result = gradcheck(broken_mul, [a, b], name="broken-mul")
        assert not result.ok
        assert result.failures
        assert all(f.tensor == "input[1]" for f in result.failures)

    def test_missing_unbroadcast_fails(self):
        """Dropping the broadcast reduction (the RN002 mutation) shows up
        numerically too: the accumulated shape error raises, which the
        checker should surface as a failure rather than crash the suite."""
        rng = np.random.default_rng(2)

        def broken_add(a, b):
            out = a.data + b.data

            def backward(grad):
                # Deliberately missing _unbroadcast — the subject under test.
                # repro-lint: disable=RN002
                a._accumulate(grad)
                b._accumulate(grad)  # repro-lint: disable=RN002

            return a._make(out, (a, b), backward)

        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            gradcheck(broken_add, [a, b], name="broken-add")

    def test_tolerances_capped(self):
        with pytest.raises(ValueError):
            gradcheck(lambda x: x, [Tensor([1.0])], atol=1e-3)
        with pytest.raises(ValueError):
            gradcheck(lambda x: x, [Tensor([1.0])], rtol=1e-2)

    def test_inputs_restored_after_check(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        before = a.data.copy()
        gradcheck(lambda x: x * x, [a])
        np.testing.assert_array_equal(a.data, before)


class TestSweep:
    def test_discovery_covers_all_swept_modules(self):
        ops = discover_ops()
        for expected in ("softmax", "Linear", "MultiHeadSelfAttention",
                         "Lstm", "LinearChainCrf"):
            assert expected in ops

    def test_every_discovered_op_has_a_spec(self):
        _register_all_specs()
        from repro.analysis.gradcheck import NON_DIFFERENTIABLE

        for op_name in discover_ops():
            assert op_name in SPECS or op_name in NON_DIFFERENTIABLE, (
                f"{op_name} is exported but has no gradcheck spec"
            )

    def test_unregistered_op_fails_sweep(self, monkeypatch):
        _register_all_specs()
        monkeypatch.delitem(SPECS, "softmax")
        results = run_sweep(only=["softmax"])
        assert len(results) == 1
        assert not results[0].ok
        assert "no gradcheck spec" in results[0].error

    def test_unknown_selected_op_fails_loudly(self):
        # A typo'd --ops name must not silently select nothing.
        results = run_sweep(only=["lstm"])  # spec is keyed "Lstm"
        assert len(results) == 1
        assert not results[0].ok
        assert "not a discovered op" in results[0].error

    def test_full_sweep_passes(self):
        """The CI gate: every op, every registered shape case, float64,
        tolerance <= 1e-4."""
        results = run_sweep()
        failed = [result for result in results if not result.ok]
        assert not failed, "\n".join(result.render() for result in failed)
        # Broadcasting, zero-size and masked cases are all represented.
        labels = " ".join(result.name for result in results)
        assert "zero-size" in labels
        assert "masked" in labels
        assert "broadcast" in labels

    def test_max_tolerance_is_the_required_gate(self):
        assert MAX_TOLERANCE <= 1e-4
