"""The concurrency lint tier (RN007–RN012): every rule fires on its
violation shape, stays quiet on the sanctioned idiom, and honours
inline suppressions."""

from repro.analysis.lint import lint_source

LIB_PATH = "src/repro/parallel/example.py"
POOL_PATH = "src/repro/parallel/pool.py"
OBS_PATH = "src/repro/obs/example.py"


def codes(findings):
    return sorted({finding.code for finding in findings})


# ----------------------------------------------------------------------
# RN007 — module state read in worker functions without a fork guard
# ----------------------------------------------------------------------
RN007_BAD = """
_CACHE = {}

def _mutate(key, value):
    _CACHE[key] = value

def task_featurize(payload):
    return _CACHE.get(payload)
"""

RN007_HELPER = """
_CACHE = {}

def _mutate(key, value):
    _CACHE[key] = value

def _warm(payload):
    return _CACHE.get(payload)

def task_featurize(payload):
    return _warm(payload)
"""

RN007_GUARDED = """
import os

_CACHE = {}

def _clear():
    _CACHE.clear()

def _mutate(key, value):
    _CACHE[key] = value

os.register_at_fork(after_in_child=_clear)

def task_featurize(payload):
    return _CACHE.get(payload)
"""

RN007_REINIT = """
_CACHE = {}

def _mutate(key, value):
    _CACHE[key] = value

def init_worker(payload):
    global _CACHE
    _CACHE = {}
    return _CACHE
"""

RN007_CONSTANT = """
_HEADERS = ["education", "experience"]

def task_segment(payload):
    return [h for h in _HEADERS if h in payload]
"""


class TestRN007:
    def test_worker_read_of_mutable_global_flagged(self):
        assert codes(lint_source(RN007_BAD, path=LIB_PATH)) == ["RN007"]

    def test_one_level_helper_indirection_flagged(self):
        findings = lint_source(RN007_HELPER, path=LIB_PATH)
        assert codes(findings) == ["RN007"]
        assert "helper" in findings[0].message

    def test_register_at_fork_guard_clean(self):
        assert lint_source(RN007_GUARDED, path=LIB_PATH) == []

    def test_in_function_reinit_clean(self):
        assert lint_source(RN007_REINIT, path=LIB_PATH) == []

    def test_readonly_constant_table_clean(self):
        # Never mutated anywhere in the module: a constant, not state.
        assert lint_source(RN007_CONSTANT, path=LIB_PATH) == []

    def test_non_worker_function_out_of_scope(self):
        source = RN007_BAD.replace("task_featurize", "featurize")
        assert lint_source(source, path=LIB_PATH) == []

    def test_worker_context_methods_in_scope(self):
        source = (
            "_STATE = {}\n"
            "def _mutate(k):\n"
            "    _STATE[k] = 1\n"
            "class NerWorkerContext:\n"
            "    def run(self, payload):\n"
            "        return _STATE.get(payload)\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN007"]

    def test_suppressed(self):
        source = RN007_BAD.replace(
            "    return _CACHE.get(payload)",
            "    return _CACHE.get(payload)  # repro-lint: disable=RN007",
        )
        assert lint_source(source, path=LIB_PATH) == []


# ----------------------------------------------------------------------
# RN008 — shared-structure mutation outside the owning lock
# ----------------------------------------------------------------------
RN008_BAD = """
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._series = {}
        self.count = 0

    def record(self, name, value):
        self._series[name] = value
        self.count += 1
"""

RN008_GOOD = """
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._series = {}
        self.count = 0

    def record(self, name, value):
        with self._lock:
            self._series[name] = value
            self.count += 1

    def _flush_unlocked(self):
        self._series.clear()
"""


class TestRN008:
    def test_unlocked_mutations_flagged(self):
        findings = lint_source(RN008_BAD, path=OBS_PATH)
        assert [f.code for f in findings] == ["RN008", "RN008"]

    def test_mutations_under_lock_clean(self):
        assert lint_source(RN008_GOOD, path=OBS_PATH) == []

    def test_unlocked_suffix_convention_exempt(self):
        # *_unlocked helpers document "caller holds the lock".
        source = RN008_GOOD.replace("def record", "def record_unlocked")
        assert lint_source(source, path=OBS_PATH) == []

    def test_init_exempt(self):
        source = (
            "import threading\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "        self._items.append(0)\n"
        )
        assert lint_source(source, path=OBS_PATH) == []

    def test_lockless_class_out_of_scope(self):
        source = (
            "class Plain:\n"
            "    def record(self, name, value):\n"
            "        self._series[name] = value\n"
        )
        assert lint_source(source, path=OBS_PATH) == []

    def test_plain_attribute_rebind_clean(self):
        # Rebinding a scalar attribute is not a structural mutation.
        source = (
            "import threading\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def mark(self):\n"
            "        self._started = True\n"
        )
        assert lint_source(source, path=OBS_PATH) == []

    def test_suppressed(self):
        source = RN008_BAD.replace(
            "        self._series[name] = value",
            "        self._series[name] = value  # repro-lint: disable=RN008",
        ).replace(
            "        self.count += 1",
            "        self.count += 1  # repro-lint: disable=RN008",
        )
        assert lint_source(source, path=OBS_PATH) == []


# ----------------------------------------------------------------------
# RN009 — array payloads through control queues
# ----------------------------------------------------------------------
class TestRN009:
    def test_grad_payload_flagged(self):
        source = (
            "def publish(result_queue, grads):\n"
            "    result_queue.put(('grads', grads))\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN009"]

    def test_tensor_data_payload_flagged(self):
        source = (
            "def publish(task_queue, model):\n"
            "    task_queue.put(model.params.data)\n"
        )
        # RN001 also fires (`put` on a `.data` payload looks like numpy
        # in-place mutation to the autograd tier) — both tiers object.
        assert "RN009" in codes(lint_source(source, path=LIB_PATH))

    def test_numpy_constructor_payload_flagged(self):
        source = (
            "def publish(q):\n"
            "    q.put(np.zeros(8))\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN009"]

    def test_control_payload_clean(self):
        source = (
            "def dispatch(task_queue, indices):\n"
            "    task_queue.put(('featurize', {'indices': indices}))\n"
            "    task_queue.put(None)\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_non_queue_receiver_out_of_scope(self):
        source = (
            "def stash(store, grads):\n"
            "    store.put('grads', grads)\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_suppressed(self):
        source = (
            "def publish(result_queue, grads):\n"
            "    result_queue.put(grads)  # repro-lint: disable=RN009\n"
        )
        assert lint_source(source, path=LIB_PATH) == []


# ----------------------------------------------------------------------
# RN010 — blocking get/join without timeout or liveness loop
# ----------------------------------------------------------------------
class TestRN010:
    def test_bare_queue_get_flagged(self):
        source = (
            "def wait(task_queue):\n"
            "    return task_queue.get()\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN010"]

    def test_bare_worker_join_flagged(self):
        source = (
            "def stop(worker_process):\n"
            "    worker_process.join()\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN010"]

    def test_get_with_timeout_clean(self):
        source = (
            "def wait(task_queue):\n"
            "    return task_queue.get(timeout=1.0)\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_join_with_timeout_clean(self):
        source = (
            "def stop(worker_process):\n"
            "    worker_process.join(timeout=5.0)\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_contextvar_get_out_of_scope(self):
        source = (
            "def current():\n"
            "    return _ACTIVE.get()\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_dict_get_out_of_scope(self):
        source = (
            "def fetch(table, key):\n"
            "    return table.get(key)\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_suppressed(self):
        source = (
            "def wait(task_queue):\n"
            "    return task_queue.get()  # repro-lint: disable=RN010\n"
        )
        assert lint_source(source, path=LIB_PATH) == []


# ----------------------------------------------------------------------
# RN011 — execution lanes only in the sanctioned modules
# ----------------------------------------------------------------------
class TestRN011:
    def test_stray_thread_flagged(self):
        source = (
            "import threading\n"
            "def watch(fn):\n"
            "    threading.Thread(target=fn, daemon=True).start()\n"
        )
        assert codes(lint_source(source, path=OBS_PATH)) == ["RN011"]

    def test_stray_process_flagged(self):
        source = (
            "def launch(ctx, fn):\n"
            "    return ctx.Process(target=fn)\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN011"]

    def test_pool_module_sanctioned(self):
        source = (
            "def launch(ctx, fn):\n"
            "    return ctx.Process(target=fn)\n"
        )
        assert lint_source(source, path=POOL_PATH) == []

    def test_tests_out_of_scope(self):
        source = (
            "import threading\n"
            "def drive(fn):\n"
            "    threading.Thread(target=fn).start()\n"
        )
        assert lint_source(source, path="tests/obs/test_example.py") == []

    def test_unrelated_local_class_clean(self):
        source = (
            "def build(document):\n"
            "    return Process(document)\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_suppressed(self):
        source = (
            "import threading\n"
            "def watch(fn):\n"
            "    # repro-lint: disable=RN011\n"
            "    threading.Thread(target=fn, daemon=True).start()\n"
        )
        assert lint_source(source, path=OBS_PATH) == []


# ----------------------------------------------------------------------
# RN012 — unbounded telemetry label cardinality
# ----------------------------------------------------------------------
class TestRN012:
    def test_loop_variable_label_flagged(self):
        source = (
            "def publish(telemetry, documents):\n"
            "    for document in documents:\n"
            "        telemetry.metrics.counter('seen').inc(doc=document)\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN012"]

    def test_document_id_attribute_flagged(self):
        source = (
            "def publish(gauge, document):\n"
            "    gauge.set(1.0, doc=document.doc_id)\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN012"]

    def test_id_through_str_wrapper_flagged(self):
        source = (
            "def publish(gauge, document):\n"
            "    gauge.set(1.0, doc=str(document.doc_id))\n"
        )
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN012"]

    def test_worker_id_over_bounded_iterable_clean(self):
        # The pool's own idiom: one series per worker, bounded by design.
        source = (
            "def publish(timer, durations):\n"
            "    for worker_id, seconds in enumerate(durations):\n"
            "        timer.observe(seconds, worker=str(worker_id))\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_range_loop_clean(self):
        source = (
            "def publish(gauge, num_workers):\n"
            "    for worker in range(num_workers):\n"
            "        gauge.set(0.0, worker=str(worker))\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_constant_label_clean(self):
        source = (
            "def publish(telemetry):\n"
            "    telemetry.metrics.counter('steps').inc(phase='pretrain')\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_non_metric_call_out_of_scope(self):
        source = (
            "def log(writer, documents):\n"
            "    for document in documents:\n"
            "        writer.emit('seen', doc=document)\n"
        )
        assert lint_source(source, path=LIB_PATH) == []

    def test_suppressed(self):
        source = (
            "def publish(gauge, document):\n"
            "    # repro-lint: disable=RN012\n"
            "    gauge.set(1.0, doc=document.doc_id)\n"
        )
        assert lint_source(source, path=LIB_PATH) == []


# ----------------------------------------------------------------------
# RN012 — stack identity in metric labels (profiler discipline)
# ----------------------------------------------------------------------
class TestRN012StackIdentity:
    def test_stack_label_key_flagged(self):
        source = (
            "def publish(counter, collapsed):\n"
            "    counter.inc(1, stack=collapsed)\n"
        )
        assert codes(lint_source(source, path=OBS_PATH)) == ["RN012"]

    def test_function_label_key_flagged(self):
        source = (
            "def publish(counter, leaf):\n"
            "    counter.inc(1, function=leaf)\n"
        )
        assert codes(lint_source(source, path=OBS_PATH)) == ["RN012"]

    def test_frame_attribute_flagged(self):
        source = (
            "def publish(counter, frame):\n"
            "    counter.inc(1, site=frame.f_code.co_name)\n"
        )
        assert codes(lint_source(source, path=OBS_PATH)) == ["RN012"]

    def test_lineno_attribute_through_str_flagged(self):
        source = (
            "def publish(gauge, frame):\n"
            "    gauge.set(1.0, at=str(frame.f_lineno))\n"
        )
        assert codes(lint_source(source, path=OBS_PATH)) == ["RN012"]

    def test_thread_name_over_thread_dict_clean(self):
        # The profiler's own idiom: one series per live thread, bounded
        # by the process's thread count.
        source = (
            "def flush(counter, samples_by_thread):\n"
            "    for thread_name, count in samples_by_thread.items():\n"
            "        counter.inc(count, thread=thread_name)\n"
        )
        assert lint_source(source, path=OBS_PATH) == []

    def test_stack_in_event_payload_out_of_scope(self):
        # stacks belong in event payloads; session.event is not a metric
        source = (
            "def flush(session, collapsed):\n"
            "    session.event('profile', stack=collapsed)\n"
        )
        assert lint_source(source, path=OBS_PATH) == []

    def test_suppressed(self):
        source = (
            "def publish(counter, collapsed):\n"
            "    # repro-lint: disable=RN012\n"
            "    counter.inc(1, stack=collapsed)\n"
        )
        assert lint_source(source, path=OBS_PATH) == []


class TestProfilerModuleDiscipline:
    """The shipped profiler/relay modules must themselves lint clean."""

    def test_profiler_source_lints_clean(self):
        import pathlib

        source = pathlib.Path("src/repro/obs/profiler.py").read_text()
        assert lint_source(source, path="src/repro/obs/profiler.py") == []

    def test_relay_source_lints_clean(self):
        import pathlib

        source = pathlib.Path("src/repro/obs/relay.py").read_text()
        assert lint_source(source, path="src/repro/obs/relay.py") == []

    def test_profiler_thread_is_sanctioned_but_copies_are_not(self):
        # the same daemon-thread idiom outside profiler.py stays flagged
        source = (
            "import threading\n"
            "def start(fn):\n"
            "    threading.Thread(target=fn, daemon=True).start()\n"
        )
        assert lint_source(source, path="src/repro/obs/profiler.py") == []
        assert codes(lint_source(source, path=OBS_PATH)) == ["RN011"]
