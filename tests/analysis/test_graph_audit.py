"""Graph audit: dead params, stale grads, anomaly mode, leak detection."""

import numpy as np
import pytest

from repro.analysis.graph_audit import GraphAudit, GraphAuditError, graph_audit
from repro.nn import Linear, ParamGroup, Sgd
from repro.nn.tensor import Tensor


def make_model(seed=0):
    return Linear(3, 2, rng=np.random.default_rng(seed))


def loss_of(model, x):
    return (model(x) * model(x)).sum()


class TestDeadParams:
    def test_clean_step_passes(self):
        model = make_model()
        x = Tensor(np.random.default_rng(1).standard_normal((4, 3)))
        with graph_audit(model) as audit:
            loss = loss_of(model, x)
            audit.watch(loss)
            loss.backward()

    def test_unreachable_parameter_detected(self):
        model = make_model()
        head = make_model(seed=2)  # never used in the loss
        x = Tensor(np.random.default_rng(3).standard_normal((4, 3)))
        named = list(model.named_parameters()) + [
            ("head." + name, p) for name, p in head.named_parameters()
        ]
        audit = GraphAudit(named)
        loss = loss_of(model, x)
        with pytest.raises(GraphAuditError, match="head\\."):
            audit.watch(loss)

    def test_frozen_parameter_not_reported(self):
        model = make_model()
        head = make_model(seed=4)
        for parameter in head.parameters():
            parameter.requires_grad = False
        x = Tensor(np.random.default_rng(5).standard_normal((2, 3)))
        named = list(model.named_parameters()) + list(head.named_parameters())
        GraphAudit(named).watch(loss_of(model, x))


class TestStaleGrads:
    def test_reused_subgraph_detected(self):
        model = make_model()
        x = Tensor(np.random.default_rng(6).standard_normal((2, 3)))
        hidden = model(x)
        first = hidden.sum()
        first.backward()
        # Re-deriving a loss from the already-backpropagated subgraph
        # would double-count gradients silently.
        second = (hidden * hidden).sum()
        with pytest.raises(GraphAuditError, match="before backward"):
            GraphAudit(model, check_leaks=False).watch(second)

    def test_leaf_grads_are_expected(self):
        # Accumulated *leaf* gradients (params between zero_grad calls)
        # are normal and must not trip the check.
        model = make_model()
        x = Tensor(np.random.default_rng(7).standard_normal((2, 3)))
        loss_of(model, x).backward()
        fresh = loss_of(model, x)
        GraphAudit(model, check_leaks=False).watch(fresh)


class TestAnomalyMode:
    def test_nan_gradient_blames_producing_op(self):
        x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        shifted = x + 0.0
        with pytest.raises(GraphAuditError, match="log"):
            with graph_audit() as audit:
                loss = shifted.log().exp().sum()
                audit.watch(loss)
                loss.backward()  # d log(0) = inf flows into `shifted`

    def test_finite_gradients_pass(self):
        model = make_model()
        x = Tensor(np.random.default_rng(8).standard_normal((2, 3)))
        with graph_audit(model) as audit:
            loss = loss_of(model, x)
            audit.watch(loss)
            loss.backward()

    def test_anomaly_can_be_disabled(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        shifted = x + 0.0
        with graph_audit(anomaly=False) as audit:
            loss = shifted.log().sum()
            audit.watch(loss)
            loss.backward()


class TestLeakDetection:
    def test_released_graph_passes_across_steps(self):
        model = make_model()
        optimizer = Sgd([ParamGroup(model.parameters(), 0.1)])
        audit = GraphAudit(model)
        rng = np.random.default_rng(9)
        for _ in range(3):
            x = Tensor(rng.standard_normal((2, 3)))
            with audit.step():
                loss = loss_of(model, x)
                audit.watch(loss)
                loss.backward()
                optimizer.step()
                optimizer.zero_grad()
            del loss
        audit.assert_released()

    def test_retained_graph_detected_at_next_step(self):
        model = make_model()
        audit = GraphAudit(model)
        rng = np.random.default_rng(10)
        hoard = []
        with audit.step():
            loss = loss_of(model, Tensor(rng.standard_normal((2, 3))))
            audit.watch(loss)
            loss.backward()
            hoard.append(loss)  # a stray strong reference
        fresh = loss_of(model, Tensor(rng.standard_normal((2, 3))))
        with pytest.raises(GraphAuditError, match="still alive"):
            audit.watch(fresh)

    def test_assert_released_reports_survivors(self):
        model = make_model()
        audit = GraphAudit(model)
        x = Tensor(np.random.default_rng(11).standard_normal((2, 3)))
        with audit.step():
            loss = loss_of(model, x)
            audit.watch(loss)
            loss.backward()
        with pytest.raises(GraphAuditError, match="still alive"):
            audit.assert_released()  # `loss` is still in scope here
