"""The repo linter: every rule must fire on a violation, stay quiet on the
idiomatic pattern, honour suppressions — and report the real repo clean."""

from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

NN_PATH = "src/repro/nn/example.py"
LIB_PATH = "src/repro/example.py"


def codes(findings):
    return sorted({finding.code for finding in findings})


# ----------------------------------------------------------------------
# RN001 — in-place mutation of Tensor.data / Tensor.grad
# ----------------------------------------------------------------------
class TestRN001:
    def test_augmented_assignment_flagged(self):
        source = "def update(param):\n    param.data += 1.0\n"
        assert codes(lint_source(source)) == ["RN001"]

    def test_fancy_assignment_flagged(self):
        source = "def reset(t):\n    t.data[0] = 0.0\n"
        assert codes(lint_source(source)) == ["RN001"]

    def test_mutating_numpy_call_flagged(self):
        source = "def scatter(t, idx, g):\n    np.add.at(t.grad, idx, g)\n"
        assert codes(lint_source(source)) == ["RN001"]

    def test_no_grad_block_allowed(self):
        source = (
            "def update(param):\n"
            "    with no_grad():\n"
            "        param.data += 1.0\n"
        )
        assert lint_source(source) == []

    def test_backward_closure_allowed(self):
        source = (
            "def op(t):\n"
            "    def backward(grad):\n"
            "        t.grad += grad\n"
            "    return backward\n"
        )
        assert lint_source(source) == []

    def test_rebinding_data_not_flagged(self):
        # Rebinding the attribute is a fresh array, not a graph mutation.
        source = "def load(t, value):\n    t.data = value.copy()\n"
        assert lint_source(source) == []


# ----------------------------------------------------------------------
# RN002 — backward closures must _unbroadcast
# ----------------------------------------------------------------------
RN002_BAD = """
def add(self, other):
    def backward(grad):
        self._accumulate(grad)
        other._accumulate(_unbroadcast(grad, other.data.shape))
    return self._make(self.data + other.data, (self, other), backward)
"""

RN002_SCALED = """
def mul(self, other):
    def backward(grad):
        self._accumulate(grad * other.data)
        other._accumulate(_unbroadcast(grad * self.data, other.data.shape))
    return self._make(self.data * other.data, (self, other), backward)
"""

RN002_GOOD = """
def add(self, other):
    def backward(grad):
        self._accumulate(_unbroadcast(grad, self.data.shape))
        other._accumulate(_unbroadcast(grad, other.data.shape))
    return self._make(self.data + other.data, (self, other), backward)
"""

RN002_UNARY = """
def neg(self):
    def backward(grad):
        self._accumulate(-grad)
    return self._make(-self.data, (self,), backward)
"""


class TestRN002:
    def test_raw_grad_passthrough_flagged(self):
        assert codes(lint_source(RN002_BAD)) == ["RN002"]

    def test_elementwise_scaled_grad_flagged(self):
        assert codes(lint_source(RN002_SCALED)) == ["RN002"]

    def test_unbroadcast_on_both_operands_clean(self):
        assert lint_source(RN002_GOOD) == []

    def test_unary_closure_exempt(self):
        # Single-operand ops have output shape == operand shape.
        assert lint_source(RN002_UNARY) == []

    def test_mutated_tensor_module_fails(self):
        """The seeded mutation: delete an _unbroadcast from the real
        engine source and the rule must catch it."""
        source = (REPO_ROOT / "src/repro/nn/tensor.py").read_text()
        target = "self._accumulate(_unbroadcast(grad, self.data.shape))"
        assert target in source
        mutated = source.replace(target, "self._accumulate(grad)", 1)
        findings = lint_source(mutated, path="src/repro/nn/tensor.py")
        assert "RN002" in codes(findings)


# ----------------------------------------------------------------------
# RN003 — no unseeded / global RNG in library code
# ----------------------------------------------------------------------
class TestRN003:
    def test_unseeded_default_rng_flagged(self):
        source = "def sample():\n    return np.random.default_rng().random(3)\n"
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN003"]

    def test_legacy_global_rng_flagged(self):
        source = "def sample():\n    return np.random.rand(3)\n"
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN003"]

    def test_stdlib_random_flagged(self):
        source = "def pick(items):\n    return random.choice(items)\n"
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN003"]

    def test_rng_in_default_argument_flagged(self):
        """The seeded-mutation case: even a *seeded* Generator in a default
        argument is one shared stream across all calls."""
        source = "def f(rng=np.random.default_rng(0)):\n    return rng.random()\n"
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN003"]

    def test_seeded_default_rng_clean(self):
        source = "def make(seed):\n    return np.random.default_rng(seed)\n"
        assert lint_source(source, path=LIB_PATH) == []

    def test_tests_out_of_scope(self):
        source = "def sample():\n    return np.random.rand(3)\n"
        assert lint_source(source, path="tests/test_example.py") == []


# ----------------------------------------------------------------------
# RN004 — predict paths must run under no_grad
# ----------------------------------------------------------------------
class TestRN004:
    def test_graph_call_outside_no_grad_flagged(self):
        source = (
            "def predict(self, docs):\n"
            "    return self.emissions(docs)\n"
        )
        assert codes(lint_source(source)) == ["RN004"]

    def test_graph_call_under_no_grad_clean(self):
        source = (
            "def predict(self, docs):\n"
            "    with no_grad():\n"
            "        return self.emissions(docs)\n"
        )
        assert lint_source(source) == []

    def test_compound_with_item_recognised(self):
        # ``with stage("encode"), no_grad():`` — the predict_batch idiom.
        source = (
            "def predict_batch(self, docs):\n"
            "    with stage('encode'), no_grad():\n"
            "        return self.emissions_batch(docs)\n"
        )
        assert lint_source(source) == []

    def test_non_predict_function_out_of_scope(self):
        source = "def fit(self, docs):\n    return self.emissions(docs)\n"
        assert lint_source(source) == []


# ----------------------------------------------------------------------
# RN005 — os.environ writes live in _threads.py / conftest.py
# ----------------------------------------------------------------------
class TestRN005:
    def test_environ_write_flagged(self):
        source = "import os\nos.environ['OMP_NUM_THREADS'] = '4'\n"
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN005"]

    def test_environ_setdefault_flagged(self):
        source = "import os\nos.environ.setdefault('OMP_NUM_THREADS', '1')\n"
        assert codes(lint_source(source, path=LIB_PATH)) == ["RN005"]

    def test_threads_module_allowed(self):
        source = "import os\nos.environ['OMP_NUM_THREADS'] = '1'\n"
        assert lint_source(source, path="src/repro/_threads.py") == []

    def test_conftest_allowed(self):
        source = "import os\nos.environ.setdefault('OMP_NUM_THREADS', '1')\n"
        assert lint_source(source, path="conftest.py") == []

    def test_environ_read_clean(self):
        source = "import os\nthreads = os.environ.get('OMP_NUM_THREADS')\n"
        assert lint_source(source, path=LIB_PATH) == []


# ----------------------------------------------------------------------
# RN006 — nn ops must route children through Tensor._make
# ----------------------------------------------------------------------
class TestRN006:
    def test_raw_tensor_on_graph_data_flagged(self):
        source = (
            "def scale(x):\n"
            "    return Tensor(x.data * 2.0)\n"
        )
        assert codes(lint_source(source, path=NN_PATH)) == ["RN006"]

    def test_is_grad_enabled_guard_allowed(self):
        # The Lstm inference-path idiom.
        source = (
            "def forward(self, x):\n"
            "    if not is_grad_enabled():\n"
            "        return Tensor(self._forward_inference(x.data))\n"
            "    return self._forward_train(x)\n"
        )
        assert lint_source(source, path=NN_PATH) == []

    def test_fresh_data_clean(self):
        source = "def zeros(shape):\n    return Tensor(np.zeros(shape))\n"
        assert lint_source(source, path=NN_PATH) == []

    def test_outside_nn_out_of_scope(self):
        source = "def scale(x):\n    return Tensor(x.data * 2.0)\n"
        assert lint_source(source, path="src/repro/core/example.py") == []


# ----------------------------------------------------------------------
# Suppressions, reporters, and the repo itself
# ----------------------------------------------------------------------
class TestSuppression:
    def test_same_line_directive(self):
        source = "def f(t):\n    t.data += 1.0  # repro-lint: disable=RN001\n"
        assert lint_source(source) == []

    def test_preceding_line_directive(self):
        source = (
            "def f(t):\n"
            "    # repro-lint: disable=RN001  (t is freshly constructed)\n"
            "    t.data += 1.0\n"
        )
        assert lint_source(source) == []

    def test_comma_separated_codes(self):
        source = "def f(t):\n    t.data += 1.0  # repro-lint: disable=RN001,RN002\n"
        assert lint_source(source) == []

    def test_wrong_code_does_not_suppress(self):
        source = "def f(t):\n    t.data += 1.0  # repro-lint: disable=RN002\n"
        assert codes(lint_source(source)) == ["RN001"]

    def test_trailing_comment_after_codes_tolerated(self):
        source = (
            "def f(t):\n"
            "    t.data += 1.0  # repro-lint: disable=RN001  # fresh array\n"
        )
        assert lint_source(source) == []

    def test_spaces_inside_code_list_tolerated(self):
        source = (
            "def f(t):\n"
            "    t.data += 1.0  # repro-lint: disable=RN001 , RN002 (reason)\n"
        )
        assert lint_source(source) == []

    def test_lowercase_codes_tolerated(self):
        source = "def f(t):\n    t.data += 1.0  # repro-lint: disable=rn001\n"
        assert lint_source(source) == []


class TestDriver:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([str(bad)])
        assert [finding.code for finding in findings] == ["RN000"]

    def test_finding_render_is_clickable(self):
        finding = Finding("src/x.py", 3, 7, "RN001", "message")
        assert finding.render() == "src/x.py:3:7: RN001 message"

    def test_repo_is_clean(self):
        """The CI gate: the linter must exit 0 on the whole repo."""
        findings = lint_paths(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        assert findings == [], "\n".join(finding.render() for finding in findings)

    def test_cli_json_reporter(self, capsys):
        import json

        from repro.analysis.lint import main

        source_dir = REPO_ROOT / "src" / "repro" / "analysis"
        assert main([str(source_dir), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"findings": [], "count": 0}


BAD_MODULE = "def f(t):\n    t.data += 1.0\n"


class TestBaseline:
    def write_bad(self, tmp_path, name="bad.py", body=BAD_MODULE):
        path = tmp_path / name
        path.write_text(body)
        return path

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == []

    def test_known_findings_filtered(self, tmp_path):
        from repro.analysis.lint import write_baseline

        bad = self.write_bad(tmp_path)
        findings = lint_paths([str(bad)])
        assert codes(findings) == ["RN001"]
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), findings)
        fresh, matched = apply_baseline(
            lint_paths([str(bad)]), load_baseline(str(baseline_file))
        )
        assert fresh == [] and matched == 1

    def test_baseline_is_line_number_free(self, tmp_path):
        """Adding unrelated lines above must not un-baseline a finding."""
        from repro.analysis.lint import write_baseline

        bad = self.write_bad(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), lint_paths([str(bad)]))
        bad.write_text("import os\n\n\n" + BAD_MODULE)
        fresh, matched = apply_baseline(
            lint_paths([str(bad)]), load_baseline(str(baseline_file))
        )
        assert fresh == [] and matched == 1

    def test_new_duplicate_exceeds_budget(self, tmp_path):
        """The baseline covers N occurrences; occurrence N+1 is fresh."""
        from repro.analysis.lint import write_baseline

        bad = self.write_bad(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), lint_paths([str(bad)]))
        bad.write_text(BAD_MODULE + "def g(t):\n    t.data += 1.0\n")
        fresh, matched = apply_baseline(
            lint_paths([str(bad)]), load_baseline(str(baseline_file))
        )
        assert len(fresh) == 1 and matched == 1

    def test_cli_baseline_gates_exit_status(self, tmp_path, capsys):
        import json

        from repro.analysis.lint import main, write_baseline

        bad = self.write_bad(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        assert main([str(bad)]) == 1
        capsys.readouterr()
        write_baseline(str(baseline_file), lint_paths([str(bad)]))
        assert main([str(bad), "--baseline", str(baseline_file)]) == 0
        assert "baselined" in capsys.readouterr().out
        assert (
            main(
                [
                    str(bad),
                    "--baseline",
                    str(baseline_file),
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0 and payload["baselined"] == 1

    def test_cli_write_baseline_round_trip(self, tmp_path, capsys):
        from repro.analysis.lint import main

        bad = self.write_bad(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline", str(baseline_file)]) == 0
        capsys.readouterr()
        assert main([str(bad), "--baseline", str(baseline_file)]) == 0

    def test_committed_baseline_has_no_concurrency_entries(self):
        """Acceptance criterion: RN007–RN012 start with a clean slate —
        true positives fixed, intentional patterns suppressed inline."""
        baseline = load_baseline(str(REPO_ROOT / "analysis" / "baseline.json"))
        assert baseline == []
