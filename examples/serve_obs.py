"""Live observability plane: serve a training run over HTTP and scrape it.

Boots the same tiny ResuFormer pipeline as ``telemetry_run.py`` inside a
:func:`repro.obs.telemetry` session with the full live plane armed —
alert rules, default latency SLOs, the continuous profiler, and the
stdlib HTTP telemetry server — then keeps serving until interrupted (or
for ``--serve-seconds``, which CI uses to scrape and exit).

While it runs::

    curl -s localhost:9099/metrics    # Prometheus text exposition
    curl -s localhost:9099/ready      # 503 while a critical alert is fresh
    curl -s localhost:9099/alerts     # recent AlertEngine firings
    curl -s localhost:9099/trace      # recent spans (bounded ring)
    curl -s localhost:9099/profile    # collapsed stacks (profiler armed)

Scrapes are safe during training: handlers only read through the same
per-metric locks the trainer writes through.  Validate any scrape with
``python -m repro.obs.server --validate http://localhost:9099/metrics``.
"""

import argparse
import time

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro import obs
from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator

SEED = 13


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--port", type=int, default=9099,
        help="serve on this port (0 picks an ephemeral one)",
    )
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--num-docs", type=int, default=10)
    parser.add_argument(
        "--profile-hz", type=float, default=67.0,
        help="stack-sampling rate for /profile (0 disables)",
    )
    parser.add_argument(
        "--serve-seconds", type=float, default=None,
        help="keep serving this long after training, then exit "
        "(default: until Ctrl-C)",
    )
    options = parser.parse_args()

    generator = ResumeGenerator(seed=SEED, content_config=ContentConfig.tiny())
    documents = generator.batch(options.num_docs)
    from repro.text import WordPieceTokenizer

    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=600,
        min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab))
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(SEED))
    classifier = BlockClassifier(
        encoder, featurizer, rng=np.random.default_rng(SEED + 1)
    )
    labeled = [LabeledDocument.from_gold(d) for d in documents]

    with obs.telemetry(
        alerts=True,
        slos=True,
        profile_hz=options.profile_hz or None,
        serve_port=options.port,
    ) as tel:
        print(f"serving telemetry on {tel.server.url}")
        print(f"  curl -s {tel.server.url}/metrics")
        BlockTrainer(classifier, seed=SEED).fit(
            labeled, epochs=options.epochs, batch_size=4
        )
        classifier.predict_batch(documents, batch_size=4)
        print("training done; endpoints stay live "
              f"(SLO budgets: {[s['slo'] for s in tel.slo.status()]})")
        try:
            if options.serve_seconds is not None:
                time.sleep(options.serve_seconds)
            else:
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:
            pass
    print("session closed")


if __name__ == "__main__":
    main()
