"""Error analysis for block classification.

Trains a small classifier, then inspects where it goes wrong: the
token-level confusion matrix, the most confused block pairs, and a
side-by-side page rendering of predictions vs. gold — the workflow behind
the paper's Figure 3 case study.
"""

import numpy as np

import repro  # noqa: F401
from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator, ascii_page
from repro.docmodel import BLOCK_TAGS
from repro.eval import confusion_matrix, format_confusion, most_confused_pairs
from repro.text import WordPieceTokenizer


def main():
    documents = ResumeGenerator(seed=17, content_config=ContentConfig.tiny()).batch(16)
    train, validation, test = documents[:10], documents[10:12], documents[12:]

    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences), vocab_size=900
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab))
    featurizer = Featurizer(tokenizer, config)
    classifier = BlockClassifier(
        HierarchicalEncoder(config, rng=np.random.default_rng(0)), featurizer
    )
    BlockTrainer(classifier, seed=0).fit(
        [LabeledDocument.from_gold(d) for d in train],
        validation=[LabeledDocument.from_gold(d) for d in validation],
        epochs=8,
        patience=4,
    )

    gold = [d.token_block_tags() for d in test]
    predicted = [classifier.predict_token_tags(d) for d in test]
    matrix = confusion_matrix(gold, predicted, BLOCK_TAGS)
    print(format_confusion(matrix, BLOCK_TAGS))
    print("\nmost confused (gold -> predicted):")
    for gold_tag, pred_tag, count in most_confused_pairs(matrix, BLOCK_TAGS):
        print(f"  {gold_tag:>9} -> {pred_tag:<9} x{count}")

    worst = max(
        range(len(test)),
        key=lambda i: sum(g != p for g, p in zip(gold[i], predicted[i])),
    )
    document = test[worst]
    print(f"\nhardest test resume: {document.doc_id}")
    print("\n--- predicted ---")
    print(ascii_page(document, 1, labels=classifier.predict_block_tags(document)))
    print("\n--- gold ---")
    print(ascii_page(document, 1))


if __name__ == "__main__":
    main()
