"""Quickstart: generate resumes, train a small ResuFormer, parse a resume.

Runs in about a minute on a laptop CPU.  The flow mirrors the paper:

1. build a synthetic resume corpus (stand-in for the proprietary dataset),
2. pre-train the hierarchical multi-modal encoder (MLLM + SCL + DNSP),
3. fine-tune the block classifier on a few labeled documents,
4. parse a held-out resume into its hierarchical structure.
"""

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    Pretrainer,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator, ascii_page
from repro.pipeline import ResumeParser
from repro.text import WordPieceTokenizer


def main():
    # 1. Data: 14 unlabeled resumes for pre-training, 9 labeled, 1 held out.
    generator = ResumeGenerator(seed=7, content_config=ContentConfig.tiny())
    documents = generator.batch(24)
    unlabeled, labeled, held_out = documents[:14], documents[14:23], documents[23]

    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=800,
        min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab))
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(0))
    print(encoder.summary())

    # 2. Pre-training with the three self-supervised objectives (Eq. 7).
    pretrainer = Pretrainer(encoder, featurizer, seed=0)
    history = pretrainer.fit(unlabeled, epochs=3, batch_size=4)
    print(
        f"\npre-training: {len(history)} steps, "
        f"loss {history[0]['total']:.2f} -> {history[-1]['total']:.2f}"
    )

    # 3. Fine-tune the BiLSTM+MLP+CRF block classifier on labeled data.
    classifier = BlockClassifier(encoder, featurizer, rng=np.random.default_rng(1))
    trainer = BlockTrainer(classifier, seed=0)
    train = [LabeledDocument.from_gold(d) for d in labeled[:7]]
    validation = [LabeledDocument.from_gold(d) for d in labeled[7:]]
    fit = trainer.fit(train, validation=validation, epochs=12, patience=5)
    print(f"fine-tuning: best val sentence accuracy {max(fit['val_accuracy']):.2f}")

    # 4. Parse a held-out resume.
    parser = ResumeParser(classifier)
    parsed = parser.parse(held_out)
    print(f"\nparsed {parsed.doc_id}: {len(parsed.blocks)} blocks")
    for block in parsed.blocks[:8]:
        print(f"  [{block.tag:>8}] {block.text[:60]}")

    print("\ngold layout of page 1 for comparison:")
    print(ascii_page(held_out, 1))


if __name__ == "__main__":
    main()
