"""Instrumented training run: every step, span and metric in one JSONL.

Trains a small ResuFormer (pre-training + block-classifier fine-tuning +
batched inference) inside a :func:`repro.obs.telemetry` session with the
default alert rules armed.  The session streams a structured run log —
``run_start`` with config and seeds, per-step losses and gradient norms,
per-stage spans (featurize / encode / decode), cache hit/miss metrics,
drift checks against a reference captured from the trained model's own
predictions, a final metric snapshot, ``run_end`` — to the path given on
the command line (default ``run_telemetry.jsonl``).

Render or gate the log afterwards with::

    python -m repro.obs.report run_telemetry.jsonl
    python -m repro.obs.compare baselines/run_telemetry_baseline.jsonl \
        run_telemetry.jsonl --no-timing

``--epochs`` shrinks or grows the fine-tuning run (CI uses 2).
``--profile-hz`` arms the continuous sampling profiler (``profile``
events land in the log; render with ``report --profile``) and
``--num-workers`` runs pre-training on a real spawn pool whose worker
telemetry — spans, step timings, profiles — is relayed back into this
same log.
"""

import argparse

import numpy as np

import repro  # noqa: F401  (pins BLAS threads)
from repro import obs
from repro.obs.drift import ReferenceProfile
from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    Pretrainer,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator
from repro.text import WordPieceTokenizer

SEED = 13


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "run_log", nargs="?", default="run_telemetry.jsonl",
        help="where to write the JSONL run log",
    )
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--pretrain-epochs", type=int, default=1)
    parser.add_argument("--num-docs", type=int, default=10)
    parser.add_argument(
        "--profile-hz", type=float, default=None,
        help="sample every thread's stack at this rate (default: off)",
    )
    parser.add_argument(
        "--num-workers", type=int, default=0,
        help="pre-train data-parallel on this many pool workers "
        "(default: in-process)",
    )
    options = parser.parse_args()

    generator = ResumeGenerator(seed=SEED, content_config=ContentConfig.tiny())
    documents = generator.batch(options.num_docs)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=600,
        min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab))
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(SEED))
    classifier = BlockClassifier(
        encoder, featurizer, rng=np.random.default_rng(SEED + 1)
    )
    labeled = [LabeledDocument.from_gold(d) for d in documents]
    split = max(len(labeled) - 2, 1)
    train, validation = labeled[:split], labeled[split:]

    with obs.telemetry(
        run_log=options.run_log,
        config={
            "epochs": options.epochs,
            "pretrain_epochs": options.pretrain_epochs,
            "num_docs": options.num_docs,
            "vocab_size": config.vocab_size,
            "hidden_dim": config.hidden_dim,
        },
        seeds={"corpus": SEED, "encoder": SEED, "classifier": SEED + 1},
        alerts=True,
        profile_hz=options.profile_hz,
    ) as tel:
        # only pass num_workers when asked: the default run must stay
        # byte-comparable to the committed obs-gate baseline
        pretrain_kwargs = (
            {"num_workers": options.num_workers} if options.num_workers else {}
        )
        Pretrainer(encoder, featurizer, seed=SEED).fit(
            documents, epochs=options.pretrain_epochs, batch_size=4,
            **pretrain_kwargs,
        )
        BlockTrainer(classifier, seed=SEED).fit(
            train, validation=validation, epochs=options.epochs, batch_size=4
        )

        # Capture a drift reference from the trained model's own serving
        # behaviour, then monitor an identical pass against it — the
        # healthy-path demo of the DriftMonitor flow (a real deployment
        # would commit the captured profile and monitor fresh traffic).
        tracked = (
            "sentence_length", "sentences_per_doc", "bbox_height",
            "bbox_y_center", "token_oov_rate", "block_label",
            "crf_confidence",
        )
        capture = obs.DriftMonitor(
            ReferenceProfile.template(tracked), check_every=10**9
        )
        tel.drift = capture
        classifier.predict_batch(documents, batch_size=4)
        tel.drift = obs.DriftMonitor(capture.current_profile(), check_every=64)
        classifier.predict_batch(documents, batch_size=4)

        featurizer.cache.export_metrics(tel.metrics)
        alerts_fired = tel.alerts.count()

    print(f"run log written to {options.run_log}")
    print(f"alerts fired: {alerts_fired}")
    flag = " --profile" if options.profile_hz else ""
    print(f"render it with: python -m repro.obs.report {options.run_log}{flag}")


if __name__ == "__main__":
    main()
