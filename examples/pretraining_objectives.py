"""Inspect the three self-supervised pre-training objectives (Section IV-A2).

Shows, step by step, what each objective sees and optimises:

* MLLM  — which tokens were masked and the model's reconstruction loss;
* SCL   — dynamic sentence masking and the contrastive similarity matrix;
* DNSP  — sampled sentence pairs and the bilinear adjacency scores;

then runs a short pre-training loop and reports all three losses falling.
"""

import numpy as np

import repro  # noqa: F401
from repro.core import (
    Featurizer,
    HierarchicalEncoder,
    Pretrainer,
    ResuFormerConfig,
    masked_copy,
)
from repro.corpus import ContentConfig, ResumeGenerator
from repro.text import WordPieceTokenizer


def main():
    documents = ResumeGenerator(
        seed=3, content_config=ContentConfig.tiny()
    ).batch(8)
    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=700, min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab))
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(0))
    pretrainer = Pretrainer(encoder, featurizer, seed=0)
    features = featurizer.featurize(documents[0])

    # --- Objective #1: masked layout-language model -------------------
    rng = np.random.default_rng(0)
    corrupted, selected = masked_copy(
        features.token_ids, features.token_mask, config.token_mask_prob,
        tokenizer.vocab.mask_id, len(tokenizer.vocab), rng,
    )
    row, col = np.argwhere(selected)[0]
    original = tokenizer.vocab.id_to_token(int(features.token_ids[row, col]))
    replaced = tokenizer.vocab.id_to_token(int(corrupted[row, col]))
    print("MLLM: masked", int(selected.sum()), "tokens; e.g.",
          f"'{original}' -> '{replaced}' (layout embedding kept)")
    print("      loss =", round(float(pretrainer.mllm_loss(features).data), 3))

    # --- Objective #2: self-supervised contrastive learning -----------
    predicted, targets, encoded = pretrainer.scl_pairs(features)
    sim = (predicted @ targets.transpose(1, 0)).numpy()
    print(f"\nSCL: masked {predicted.shape[0]} sentence slots of "
          f"{features.num_sentences}; similarity matrix diag vs off-diag: "
          f"{np.diag(sim).mean():.3f} vs "
          f"{(sim.sum() - np.trace(sim)) / max(sim.size - len(sim), 1):.3f}")
    loss = Pretrainer.info_nce(predicted, targets, config.temperature)
    print("      loss =", round(float(loss.data), 3))

    # --- Objective #3: dynamic next-sentence prediction ---------------
    ns_loss = pretrainer.dnsp_loss(encoded.contextual)
    print(f"\nDNSP: bilinear adjacency over sampled pairs; "
          f"loss = {float(ns_loss.data):.3f}")

    # --- Combined objective (Eq. 7) ------------------------------------
    print("\npre-training 3 epochs ...")
    history = pretrainer.fit(documents, epochs=3, batch_size=4)
    first, last = history[0], history[-1]
    for key in ("wp", "cl", "ns", "total"):
        print(f"  {key:>5}: {first.get(key, float('nan')):.3f} -> "
              f"{last.get(key, float('nan')):.3f}")


if __name__ == "__main__":
    main()
