"""Distantly supervised intra-block NER with self-distillation (task 2).

Demonstrates the paper's second pipeline end to end:

1. build entity dictionaries (deliberately incomplete and noisy),
2. auto-annotate block text (string matching + regex + heuristics),
3. augment the training data (mention replacement, field reordering),
4. train BERT+BiLSTM+MLP with self-distillation based self-training
   (Algorithm 2: soft labels + high-confidence token selection),
5. compare against pure dictionary matching on a gold test set.
"""

import numpy as np

import repro  # noqa: F401
from repro.corpus import build_ner_corpus
from repro.eval import entity_prf, entity_prf_by_tag
from repro.ner import (
    DistantAnnotator,
    NerConfig,
    NerTagger,
    SelfTrainConfig,
    SelfTrainer,
    annotate_examples,
    augment_examples,
    build_dictionaries,
)
from repro.text import WordPieceTokenizer


def main():
    # 1-2. Dictionaries cover ~60% of values and carry distractor noise.
    corpus = build_ner_corpus(
        num_train_docs=60, num_validation_docs=6, num_test_docs=10, seed=11
    )
    dictionaries = build_dictionaries(coverage=0.6, seed=1, noise=0.4)
    annotator = DistantAnnotator(dictionaries)
    train = annotate_examples(corpus.train, annotator)
    print(f"distantly annotated {len(train)} training blocks")

    # 3. Augmentation.
    train = augment_examples(train, dictionaries, seed=0)
    print(f"after augmentation: {len(train)} blocks")

    # 4. Self-distillation based self-training (Algorithm 2).
    tokenizer = WordPieceTokenizer.train(
        (e.text for e in train), vocab_size=1200, min_frequency=1
    )
    config = NerConfig(
        vocab_size=len(tokenizer.vocab), hidden_dim=80, lstm_hidden=48
    )
    model = NerTagger(config, tokenizer, rng=np.random.default_rng(0))
    trainer = SelfTrainer(
        model,
        SelfTrainConfig(
            teacher_epochs=12, teacher_patience=4, iterations=16,
            learning_rate=2e-3, student_learning_rate=5e-4,
            batch_size=24, eval_every=4,
        ),
        seed=0,
    )
    student = trainer.train(train, corpus.validation)

    # 5. Evaluate against gold labels.
    gold = [e.labels for e in corpus.test]
    ours = entity_prf(gold, student.predict(corpus.test))
    matcher = entity_prf(
        gold, [annotator.annotate(e.words).labels for e in corpus.test]
    )
    print(f"\nD&R Match : P={matcher.precision:.2f} "
          f"R={matcher.recall:.2f} F1={matcher.f1:.2f}")
    print(f"Ours      : P={ours.precision:.2f} "
          f"R={ours.recall:.2f} F1={ours.f1:.2f}")

    print("\nper-tag F1 (ours):")
    for tag, score in entity_prf_by_tag(gold, student.predict(corpus.test)).items():
        print(f"  {tag:>9}: {score.f1:.2f}")


if __name__ == "__main__":
    main()
