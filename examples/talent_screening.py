"""Talent screening: batch-parse resumes and filter candidates.

The downstream scenario the paper's introduction motivates (person-job
matching, talent identification): parse a pile of resumes into structured
records, then run a screening query over the structure — e.g. "candidates
with at least two work experiences and a master's degree or higher".
Stage-1 uses a trained block classifier; stage-2 extracts entities with
the distant-supervision dictionary annotator (the deployable fallback when
no NER model is trained).
"""

import numpy as np

import repro  # noqa: F401
from repro.core import (
    BlockClassifier,
    BlockTrainer,
    Featurizer,
    HierarchicalEncoder,
    LabeledDocument,
    ResuFormerConfig,
)
from repro.corpus import ContentConfig, ResumeGenerator
from repro.docmodel import BLOCK_ENTITIES
from repro.ner import DistantAnnotator, build_dictionaries
from repro.pipeline import ResumeParser
from repro.text import WordPieceTokenizer


class DictionaryTagger:
    """Minimal NerTagger-compatible adapter over the distant annotator."""

    def __init__(self, annotator):
        self.annotator = annotator
        from repro.docmodel import ENTITY_SCHEME

        self.scheme = ENTITY_SCHEME

    def predict(self, examples):
        return [self.annotator.annotate(e.words).labels for e in examples]


def screen(parsed, min_work_experiences=2, degrees=("master", "phd", "mba")):
    """Screening rule over the parsed structure."""
    work = parsed.blocks_by_tag("WorkExp")
    if len(work) < min_work_experiences:
        return False, "too few work experiences"
    for block in parsed.blocks_by_tag("EduExp"):
        for entity in block.entities:
            if entity.tag == "Degree" and entity.text in degrees:
                return True, f"{len(work)} work experiences, {entity.text} degree"
    return False, "no qualifying degree found"


def main():
    generator = ResumeGenerator(seed=23, content_config=ContentConfig.tiny())
    documents = generator.batch(26)
    labeled, pool = documents[:6], documents[6:]

    tokenizer = WordPieceTokenizer.train(
        (s.text for d in documents for s in d.sentences),
        vocab_size=800, min_frequency=1,
    )
    config = ResuFormerConfig(vocab_size=len(tokenizer.vocab))
    featurizer = Featurizer(tokenizer, config)
    encoder = HierarchicalEncoder(config, rng=np.random.default_rng(0))
    classifier = BlockClassifier(encoder, featurizer, rng=np.random.default_rng(1))
    BlockTrainer(classifier, seed=0).fit(
        [LabeledDocument.from_gold(d) for d in labeled[:5]],
        validation=[LabeledDocument.from_gold(labeled[5])],
        epochs=8, patience=4,
    )

    annotator = DistantAnnotator(build_dictionaries(coverage=0.9, seed=0))
    parser = ResumeParser(classifier, DictionaryTagger(annotator))

    accepted = 0
    for document in pool:
        parsed = parser.parse(document)
        ok, reason = screen(parsed)
        accepted += ok
        verdict = "ACCEPT" if ok else "reject"
        name = next(
            (e.text for b in parsed.blocks_by_tag("PInfo")
             for e in b.entities if e.tag == "Name"),
            "(name not found)",
        )
        print(f"{verdict}  {document.doc_id}  {name:<22} {reason}")
    print(f"\n{accepted}/{len(pool)} candidates pass the screen")


if __name__ == "__main__":
    main()
